"""Deterministic in-process network with a virtual clock.

This is the testbed substitute for the paper's two physical machines.  A
request is executed by directly invoking the listener's handler, while the
virtual clock advances by the modelled cost:

    uplink propagation + payload/bandwidth        (NetworkConditions)
  + client request overhead + per-byte codec CPU  (HostCosts)
  + server dispatch overhead + per-byte codec CPU
  + [any charges the middleware reports while handling]
  + downlink propagation + response/bandwidth

Because the handler runs inline, nested calls (a server invoking a stub
that points back at itself — the §4.4 loopback scenario) recurse naturally
and their cost lands inside the outer request's interval, exactly as it
would on real hardware.

Loopback detection: a channel whose originating host equals the listener's
host pays ``loopback_latency_s`` instead of propagation latency.
"""

from __future__ import annotations

import threading

from repro.net.clock import SimClock
from repro.net.conditions import DEFAULT_HOSTS, LOCALHOST, HostCosts, NetworkConditions
from repro.net.faults import FaultInjector
from repro.net.transport import (
    Channel,
    ConnectError,
    ConnectionClosedError,
    Listener,
    Network,
    host_of,
)


class SimNetwork(Network):
    """One simulated address space: listeners, channels, clock, faults."""

    def __init__(
        self,
        conditions: NetworkConditions = LOCALHOST,
        hosts: HostCosts = DEFAULT_HOSTS,
        clock: SimClock = None,
        faults: FaultInjector = None,
        trace=None,
    ):
        self.conditions = conditions
        self.hosts = hosts
        self.clock = clock if clock is not None else SimClock()
        self.faults = faults if faults is not None else FaultInjector()
        self.trace = trace  # optional repro.net.trace.NetworkTrace
        self._listeners = {}
        self._channels = []
        self._lock = threading.Lock()
        self._closed = False

    def listen(self, address: str, handler) -> "SimListener":
        if not callable(handler):
            raise TypeError("handler must be callable")
        with self._lock:
            if self._closed:
                raise ConnectionClosedError("network is closed")
            if address in self._listeners:
                raise ValueError(f"address already in use: {address!r}")
            listener = SimListener(self, address, handler)
            self._listeners[address] = listener
            return listener

    def connect(self, address: str, from_host: str = "client") -> "SimChannel":
        with self._lock:
            if self._closed:
                raise ConnectionClosedError("network is closed")
            if address not in self._listeners:
                raise ConnectError(address)
            channel = SimChannel(self, address, from_host)
            self._channels.append(channel)
            return channel

    def close(self) -> None:
        with self._lock:
            self._closed = True
            listeners = list(self._listeners.values())
            channels = list(self._channels)
            self._listeners.clear()
            self._channels.clear()
        for listener in listeners:
            listener._open = False
        for channel in channels:
            channel._open = False

    def _drop_listener(self, address: str) -> None:
        with self._lock:
            self._listeners.pop(address, None)

    def _lookup(self, address: str):
        with self._lock:
            listener = self._listeners.get(address)
        if listener is None or not listener._open:
            raise ConnectError(address)
        return listener

    def charge_cpu(self, kind: str, count: int = 1) -> None:
        """Advance the clock by the host cost of *count* charge events."""
        self.clock.advance(self.hosts.charge_cost(kind, count))


class SimListener(Listener):
    """A handler registered at a simulated address."""

    def __init__(self, network: SimNetwork, address: str, handler):
        super().__init__(address)
        self._network = network
        self._handler = handler
        self._open = True
        self.host = host_of(address)

    def charge(self, kind: str, count: int = 1) -> None:
        """Report server-side middleware CPU (prices into virtual time)."""
        self.stats.record_charge(kind, count)
        self._network.charge_cpu(kind, count)

    def close(self) -> None:
        self._open = False
        self._network._drop_listener(self.address)


class SimChannel(Channel):
    """Client end of a simulated connection."""

    def __init__(self, network: SimNetwork, address: str, from_host: str):
        super().__init__()
        self._network = network
        self._address = address
        self._from_host = from_host
        self._loopback = from_host == host_of(address)
        self._open = True

    @property
    def address(self) -> str:
        return self._address

    @property
    def is_loopback(self) -> bool:
        return self._loopback

    def request(self, payload: bytes) -> bytes:
        if not self._open:
            raise ConnectionClosedError(f"channel to {self._address!r} is closed")
        network = self._network
        listener = network._lookup(self._address)
        network.faults.check(self._address, payload)

        conditions = network.conditions
        hosts = network.hosts
        clock = network.clock
        started_at = clock.now()

        clock.advance(
            hosts.request_overhead_s
            + hosts.per_byte_cpu_s * len(payload)
            + conditions.transmission_time(len(payload), self._loopback)
            + hosts.dispatch_overhead_s
        )
        response = listener._handler(payload)
        if not isinstance(response, (bytes, bytearray, memoryview)):
            raise TypeError(
                f"handler for {self._address!r} returned "
                f"{type(response).__name__}, expected bytes"
            )
        # Byte accounting charges len() of whatever buffer the handler
        # returned — a zero-copy view prices identically to its bytes.
        clock.advance(
            hosts.per_byte_cpu_s * len(response)
            + conditions.transmission_time(len(response), self._loopback)
        )
        self.stats.record_request(len(payload), len(response))
        listener.stats.record_request(len(payload), len(response))
        if network.trace is not None:
            from repro.net.trace import MessageEvent

            network.trace.record(
                MessageEvent(
                    started_at=started_at,
                    finished_at=clock.now(),
                    source=self._from_host,
                    target=self._address,
                    bytes_up=len(payload),
                    bytes_down=len(response),
                    loopback=self._loopback,
                )
            )
        return response

    def charge(self, kind: str, count: int = 1) -> None:
        """Report client-side middleware CPU (prices into virtual time)."""
        super().charge(kind, count)
        self._network.charge_cpu(kind, count)

    def close(self) -> None:
        self._open = False
