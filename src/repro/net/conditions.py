"""Network conditions and host cost models for the simulator.

The evaluation ran on two physical configurations (paper §5.2):

1. workstations on a dedicated 1 Gbps LAN, and
2. laptops on a 54 Mbps wireless network.

``LAN`` and ``WIRELESS`` are calibrated so the *shapes* of every figure
reproduce: RMI time grows linearly in the number of calls while BRMI stays
near constant; RMI wins single-call no-ops; BRMI wins single-call
remote-returning calls.  (The paper's stated 252 ms wireless latency is
inconsistent with its own Figure 6, where one RMI no-op completes in
~2.4 ms; we calibrate to the figures.)

Cost accounting is split between:

- :class:`NetworkConditions` — the pipe: propagation latency, bandwidth,
  and loopback latency for a host talking to itself;
- :class:`HostCosts` — CPU work: per-request marshalling/dispatch
  overheads, per-byte codec cost, and the middleware-specific charges the
  RMI and BRMI layers report (stub export, batch bookkeeping, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

# Charge kinds the middleware layers report to the transport.  Using
# constants (not bare strings at call sites) keeps the cost model and the
# layers in sync.
CHARGE_REMOTE_EXPORT = "remote_export"  # marshal a remote object into a ref
CHARGE_STUB_CREATE = "stub_create"  # unmarshal a ref into a live stub
CHARGE_BATCH_SETUP = "batch_setup"  # fixed cost of executing one batch
CHARGE_BATCH_OP = "batch_op"  # replaying one recorded invocation
CHARGE_BATCH_RECORD = "batch_record"  # client-side recording of one call
CHARGE_PROXY_CREATE = "proxy_create"  # client-side BRMI proxy construction


@dataclass(frozen=True)
class NetworkConditions:
    """Propagation and throughput parameters of one network."""

    name: str
    latency_s: float  # one-way propagation delay between distinct hosts
    bandwidth_bps: float  # symmetric link throughput
    loopback_latency_s: float = 5e-6  # host calling itself (kernel loopback)

    def __post_init__(self):
        if self.latency_s < 0:
            raise ValueError(f"latency cannot be negative: {self.latency_s}")
        if self.bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive: {self.bandwidth_bps}")
        if self.loopback_latency_s < 0:
            raise ValueError("loopback latency cannot be negative")

    def transmission_time(self, num_bytes: int, loopback: bool = False) -> float:
        """Seconds to push *num_bytes* through the pipe, one way."""
        if num_bytes < 0:
            raise ValueError(f"byte count cannot be negative: {num_bytes}")
        latency = self.loopback_latency_s if loopback else self.latency_s
        return latency + (num_bytes * 8.0) / self.bandwidth_bps

    def round_trip_time(self, bytes_up: int, bytes_down: int,
                        loopback: bool = False) -> float:
        """Seconds on the wire for a request/response pair."""
        return self.transmission_time(bytes_up, loopback) + self.transmission_time(
            bytes_down, loopback
        )


@dataclass(frozen=True)
class HostCosts:
    """CPU cost model of the endpoints (identical hosts on both sides)."""

    request_overhead_s: float = 20e-6  # client: issue one request
    dispatch_overhead_s: float = 25e-6  # server: receive + dispatch one request
    per_byte_cpu_s: float = 4e-9  # codec work per payload byte, each side
    charges: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_CHARGES)
    )

    def charge_cost(self, kind: str, count: int = 1) -> float:
        """CPU seconds for *count* events of charge *kind*.

        Unknown kinds cost nothing — the layers may report charges a
        particular profile chooses not to model.
        """
        if count < 0:
            raise ValueError(f"charge count cannot be negative: {count}")
        return self.charges.get(kind, 0.0) * count


#: Default per-event CPU charges, calibrated against the paper's figures.
#: remote_export dominates calls that return remote objects (Figures 7-9):
#: the server must register the object and build/serialize a stub.
DEFAULT_CHARGES = {
    CHARGE_REMOTE_EXPORT: 450e-6,
    CHARGE_STUB_CREATE: 150e-6,
    CHARGE_BATCH_SETUP: 90e-6,
    CHARGE_BATCH_OP: 18e-6,
    CHARGE_BATCH_RECORD: 6e-6,
    CHARGE_PROXY_CREATE: 12e-6,
}

#: Configuration 1: dedicated 1 Gbps LAN between two workstations.
LAN = NetworkConditions(
    name="lan-1gbps", latency_s=55e-6, bandwidth_bps=1e9
)

#: Configuration 2: 54 Mbps wireless between two laptops.  Calibrated to
#: Figure 6's observed per-call cost (~2.4 ms), not the quoted 252 ms.
WIRELESS = NetworkConditions(
    name="wireless-54mbps", latency_s=1.1e-3, bandwidth_bps=54e6
)

#: A fast localhost profile for functional tests (negligible latency).
LOCALHOST = NetworkConditions(
    name="localhost", latency_s=1e-6, bandwidth_bps=10e9
)

#: Hosts used in both paper configurations (identical machines).
DEFAULT_HOSTS = HostCosts()

#: Zero-cost host profile: only propagation and bandwidth matter.  Used by
#: ablation benchmarks to isolate network effects from CPU effects.
FREE_CPU = HostCosts(
    request_overhead_s=0.0,
    dispatch_overhead_s=0.0,
    per_byte_cpu_s=0.0,
    charges={},
)

PRESETS = {
    "lan": LAN,
    "wireless": WIRELESS,
    "localhost": LOCALHOST,
}


def preset(name: str) -> NetworkConditions:
    """Look up a named preset (``lan``, ``wireless``, ``localhost``)."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown network preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None


def scaled(conditions: NetworkConditions, latency_factor: float = 1.0,
           bandwidth_factor: float = 1.0) -> NetworkConditions:
    """Derive conditions with scaled latency/bandwidth (for sweeps)."""
    if latency_factor < 0 or bandwidth_factor <= 0:
        raise ValueError("factors must be positive")
    return replace(
        conditions,
        name=f"{conditions.name}x{latency_factor:g}/{bandwidth_factor:g}",
        latency_s=conditions.latency_s * latency_factor,
        bandwidth_bps=conditions.bandwidth_bps * bandwidth_factor,
    )
