"""Clocks: wall time for real transports, virtual time for the simulator.

The paper's evaluation measures elapsed milliseconds on a physical network.
Our benchmarks run on a *virtual* clock instead: the simulated network
advances it by computed transmission and CPU costs, so measurements are
deterministic, instantaneous to collect, and independent of the load on the
machine running the benchmark suite.
"""

from __future__ import annotations

import threading
import time


class Clock:
    """Minimal clock interface: a monotonically non-decreasing ``now``."""

    def now(self) -> float:
        """Current time in seconds."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Advance (virtual) or wait (real) for *seconds*."""
        raise NotImplementedError


class WallClock(Clock):
    """Real time, for the TCP transport and interactive examples."""

    def now(self) -> float:
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class SimClock(Clock):
    """Virtual time that only moves when someone advances it.

    Thread-safe: the TCP-free simulator is single-threaded in practice, but
    tests that mix threads with a shared clock must not corrupt it.
    """

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError(f"clock cannot start in negative time: {start}")
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time: {seconds}")
        with self._lock:
            self._now += seconds
            return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)


class Stopwatch:
    """Measure an interval on any clock.

    >>> clock = SimClock()
    >>> watch = Stopwatch(clock)
    >>> clock.advance(0.25)
    0.25
    >>> watch.elapsed()
    0.25
    """

    def __init__(self, clock: Clock):
        self._clock = clock
        self._start = clock.now()

    def restart(self) -> None:
        """Reset the interval origin to now."""
        self._start = self._clock.now()

    def elapsed(self) -> float:
        """Seconds since construction or the last :meth:`restart`."""
        return self._clock.now() - self._start

    def elapsed_ms(self) -> float:
        """Milliseconds since construction or the last :meth:`restart`."""
        return self.elapsed() * 1e3
