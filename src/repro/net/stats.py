"""Traffic accounting shared by both transports.

Round-trip counts are load-bearing for the reproduction: §5.1 of the paper
argues applicability in terms of remote calls saved (e.g. the file listing
drops from ``1 + 4N`` calls to one).  Tests assert those exact counts via
these counters rather than eyeballing timings.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass


@dataclass(frozen=True)
class TrafficSnapshot:
    """Immutable view of the counters at one instant."""

    requests: int
    bytes_sent: int
    bytes_received: int
    charges: dict

    @property
    def total_bytes(self) -> int:
        """Payload bytes in both directions."""
        return self.bytes_sent + self.bytes_received

    def as_dict(self) -> dict:
        """Flat JSON-friendly form (charges nested under ``charge.*``),
        matching the names the metrics bridge publishes."""
        out = {
            "requests": self.requests,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
        }
        for kind, count in sorted(self.charges.items()):
            out[f"charge.{kind}"] = count
        return out


class TrafficStats:
    """Thread-safe request/byte/charge counters.

    One instance per connection; servers aggregate one across all
    connections they accept.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._requests = 0
        self._bytes_sent = 0
        self._bytes_received = 0
        self._charges = Counter()

    def record_request(self, bytes_sent: int, bytes_received: int) -> None:
        """Count one completed round trip."""
        if bytes_sent < 0 or bytes_received < 0:
            raise ValueError("byte counts cannot be negative")
        with self._lock:
            self._requests += 1
            self._bytes_sent += bytes_sent
            self._bytes_received += bytes_received

    def record_charge(self, kind: str, count: int = 1) -> None:
        """Count middleware-level charge events (see conditions module)."""
        with self._lock:
            self._charges[kind] += count

    def snapshot(self) -> TrafficSnapshot:
        """Copy the counters into an immutable snapshot."""
        with self._lock:
            return TrafficSnapshot(
                requests=self._requests,
                bytes_sent=self._bytes_sent,
                bytes_received=self._bytes_received,
                charges=dict(self._charges),
            )

    def reset(self) -> None:
        """Zero all counters (benchmark harness reuses connections)."""
        with self._lock:
            self._requests = 0
            self._bytes_sent = 0
            self._bytes_received = 0
            self._charges.clear()

    @property
    def requests(self) -> int:
        with self._lock:
            return self._requests

    @property
    def bytes_sent(self) -> int:
        with self._lock:
            return self._bytes_sent

    @property
    def bytes_received(self) -> int:
        with self._lock:
            return self._bytes_received
