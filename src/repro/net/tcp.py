"""Real TCP transport over loopback sockets.

Functionally identical to :class:`repro.net.sim.SimNetwork` from the RMI
layer's point of view; used by integration tests and the runnable examples
to prove the middleware works over an actual byte stream, concurrent
clients and all — not just the in-process simulator.

One thread per accepted connection; requests on a single connection are
processed in order (matching the synchronous RMI call model), while
separate connections proceed concurrently.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.wire.framing import FrameReceiver, write_frame
from repro.net.transport import (
    Channel,
    ConnectError,
    ConnectionClosedError,
    Listener,
    Network,
)


def parse_tcp_address(address: str):
    """Split ``tcp://host:port`` into (host, port)."""
    if address.startswith("tcp://"):
        address = address[len("tcp://") :]
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"bad tcp address {address!r}; want tcp://host:port")
    return host, int(port)


_parse = parse_tcp_address

#: Whether this platform can shard one listening port across processes.
#: Linux and the BSDs have ``SO_REUSEPORT``; where it is missing the
#: supervisor falls back to a single acceptor (see repro.aio.supervisor).
HAS_REUSEPORT = hasattr(socket, "SO_REUSEPORT")


def set_reuseport(sock: socket.socket) -> None:
    """Enable SO_REUSEPORT on *sock* (must run before ``bind``).

    Raises :class:`OSError`/:class:`AttributeError` where the option is
    unavailable; gate call sites on :data:`HAS_REUSEPORT`.
    """
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)


def reserve_reuseport(host: str = "127.0.0.1", port: int = 0):
    """Reserve a port for a reuseport listener group.

    Binds (without listening) a SO_REUSEPORT socket to *host*:*port* and
    returns ``(sock, port)``.  A bound-but-not-listening socket never
    receives SYNs, so it holds the port against unrelated binders while
    every listener that *does* set SO_REUSEPORT can still join the
    group.  The caller keeps the socket open for the lifetime of the
    group and closes it afterwards.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        set_reuseport(sock)
        sock.bind((host, port))
    except OSError:
        sock.close()
        raise
    return sock, sock.getsockname()[1]


class TcpNetwork(Network):
    """Factory for real socket listeners/channels.

    *trace* is an optional :class:`~repro.net.trace.NetworkTrace`: every
    channel this network hands out records its round trips there
    (wall-clock timestamps), so the Figure-1 message charts render from
    real TCP runs exactly as they do from the simulator.
    """

    def __init__(self, trace=None, reuse_port: bool = False):
        self._listeners = []
        self._channels = []
        self._lock = threading.Lock()
        self._trace = trace
        self._reuse_port = reuse_port

    def listen(self, address: str, handler) -> "TcpListener":
        listener = TcpListener(address, handler, reuse_port=self._reuse_port)
        with self._lock:
            self._listeners.append(listener)
        return listener

    def connect(self, address: str, from_host: str = "client") -> "TcpChannel":
        channel = TcpChannel(address, trace=self._trace, from_host=from_host)
        with self._lock:
            self._channels.append(channel)
        return channel

    def close(self) -> None:
        with self._lock:
            channels = list(self._channels)
            listeners = list(self._listeners)
            self._channels.clear()
            self._listeners.clear()
        for channel in channels:
            channel.close()
        for listener in listeners:
            listener.close()


class TcpListener(Listener):
    """Threaded accept loop serving ``handler(bytes-like) -> bytes``.

    The handler receives a ``memoryview`` of the connection's reusable
    receive buffer (valid for the duration of the call); handlers that
    keep or rewrite the payload must take their own ``bytes()`` copy.
    The RMI core decodes in place and retains nothing.
    """

    def __init__(self, address: str, handler, reuse_port: bool = False):
        host, port = _parse(address)
        self._handler = handler
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuse_port:
            # Join (or found) the port's reuseport listener group: the
            # kernel load-balances incoming connections across every
            # listening member — the process-shard serving model.
            set_reuseport(self._sock)
        self._sock.bind((host, port))
        self._sock.listen(64)
        actual_host, actual_port = self._sock.getsockname()
        super().__init__(f"tcp://{actual_host}:{actual_port}")
        self._closed = threading.Event()
        self._conn_lock = threading.Lock()
        self._threads = []
        self._conns = set()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"tcp-accept-{actual_port}", daemon=True
        )
        self._accept_thread.start()

    def charge(self, kind: str, count: int = 1) -> None:
        """Record middleware charges for statistics only (real CPU time
        is already spent for real on this transport)."""
        self.stats.record_charge(kind, count)

    def _accept_loop(self):
        while not self._closed.is_set():
            try:
                conn, _peer = self._sock.accept()
            except OSError:
                return  # listener socket closed
            with self._conn_lock:
                if self._closed.is_set():
                    conn.close()
                    return
                self._conns.add(conn)
                # Reap finished connection threads so a long-lived listener
                # serving many short connections doesn't accumulate them.
                self._threads = [t for t in self._threads if t.is_alive()]
                thread = threading.Thread(
                    target=self._serve_connection, args=(conn,), daemon=True
                )
                self._threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket):
        # One reusable receive buffer per connection: requests decode
        # straight from it (the handler runs before the next receive
        # overwrites the view), responses go out via sendmsg — neither
        # direction stages a contiguous copy.
        receiver = FrameReceiver()
        try:
            with conn:
                while not self._closed.is_set():
                    try:
                        payload = receiver.receive(conn)
                    except Exception:
                        return  # peer vanished mid-frame; drop the connection
                    if payload == b"":
                        return  # clean EOF
                    try:
                        response = self._handler(payload)
                    except Exception:
                        # The RMI dispatcher encodes its own error responses; a
                        # raw exception here means the handler itself is broken.
                        # Close the connection so the client sees a transport
                        # error instead of hanging.
                        return
                    try:
                        write_frame(conn, response)
                    except OSError:
                        return
                    self.stats.record_request(len(payload), len(response))
        finally:
            with self._conn_lock:
                self._conns.discard(conn)

    def close(self) -> None:
        """Stop serving, idempotently.

        Closes the listening socket, force-closes every live
        per-connection socket (unblocking their ``recv``), and joins the
        accept thread and connection threads, so repeated start/stop
        cycles leak neither daemon threads nor ports.  Joins are bounded:
        a handler stuck in user code cannot wedge shutdown.
        """
        if self._closed.is_set():
            return
        self._closed.set()
        try:
            # close() alone does not wake a thread blocked in accept();
            # shutdown() does (EINVAL), so the join below can succeed.
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        with self._conn_lock:
            conns = list(self._conns)
            threads = list(self._threads)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        self._accept_thread.join(timeout=2.0)
        deadline = time.monotonic() + 2.0
        for thread in threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        with self._conn_lock:
            self._threads = [t for t in self._threads if t.is_alive()]


class TcpChannel(Channel):
    """Client socket issuing framed request/response pairs.

    *request_timeout* bounds each round trip (seconds); ``None`` waits
    forever.  A timeout closes the channel — the response stream would
    be desynchronized if a late reply arrived for an abandoned request.
    """

    def __init__(self, address: str, request_timeout: float = None,
                 trace=None, from_host: str = "client"):
        super().__init__()
        host, port = _parse(address)
        self._address = address
        self._io_lock = threading.Lock()
        self._receiver = FrameReceiver()
        self._trace = trace
        self._from_host = from_host
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError(f"request_timeout must be positive: {request_timeout}")
        self._request_timeout = request_timeout
        try:
            self._sock = socket.create_connection((host, port), timeout=10.0)
            self._sock.settimeout(request_timeout)
        except OSError as exc:
            raise ConnectError(address) from exc
        self._open = True

    @property
    def address(self) -> str:
        return self._address

    def request(self, payload: bytes) -> bytes:
        started = time.monotonic() if self._trace is not None else 0.0
        with self._io_lock:
            if not self._open:
                raise ConnectionClosedError(
                    f"channel to {self._address!r} is closed"
                )
            try:
                write_frame(self._sock, payload)
                # Detach from the reusable receive buffer: the Channel
                # API promises bytes that outlive the next round trip.
                # (Like read_frame before it, this folds the empty frame
                # into the clean-EOF b"" — the codec never emits one.)
                response = bytes(self._receiver.receive(self._sock))
            except OSError as exc:
                self._open = False
                raise ConnectionClosedError(
                    f"i/o failure talking to {self._address!r}: {exc}"
                ) from exc
        if response == b"":
            self._open = False
            raise ConnectionClosedError(
                f"server at {self._address!r} closed the connection"
            )
        self.stats.record_request(len(payload), len(response))
        if self._trace is not None:
            from repro.net.trace import MessageEvent

            self._trace.record(MessageEvent(
                started, time.monotonic(), self._from_host, self._address,
                len(payload), len(response), False,
            ))
        return response

    def close(self) -> None:
        with self._io_lock:
            self._open = False
            try:
                self._sock.close()
            except OSError:
                pass
