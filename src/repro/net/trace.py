"""Message-flow tracing for any transport.

The paper's Figure 1 contrasts the runtime architectures as message
charts: n request/response pairs under RMI versus a single batched pair
under BRMI.  A :class:`NetworkTrace` attached to a transport —
``SimNetwork(trace=...)``, ``TcpNetwork(trace=...)``, or
``AioNetwork(trace=...)`` — records every round trip so the same charts
render from an actual run on any of them; see
``examples/message_flow.py``.  The simulator stamps virtual seconds,
the real transports ``time.monotonic()``; the renderer shows times
relative to the first event, so both read the same.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class MessageEvent:
    """One request/response pair observed on a traced transport."""

    started_at: float  # seconds (virtual or monotonic) the request left
    finished_at: float  # seconds the response arrived (same clock)
    source: str  # originating host
    target: str  # listener address
    bytes_up: int
    bytes_down: int
    loopback: bool

    @property
    def duration(self) -> float:
        """Virtual seconds this round trip occupied."""
        return self.finished_at - self.started_at


class NetworkTrace:
    """Thread-safe append-only log of simulated round trips."""

    def __init__(self):
        self._lock = threading.Lock()
        self._events: List[MessageEvent] = []

    def record(self, event: MessageEvent) -> None:
        with self._lock:
            self._events.append(event)

    def events(self) -> List[MessageEvent]:
        """Snapshot of events in completion order."""
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self):
        with self._lock:
            return len(self._events)

    def round_trips(self, include_loopback: bool = True) -> int:
        """How many request/response pairs were traced."""
        with self._lock:
            if include_loopback:
                return len(self._events)
            return sum(1 for event in self._events if not event.loopback)

    def total_bytes(self) -> int:
        with self._lock:
            return sum(e.bytes_up + e.bytes_down for e in self._events)


def render_sequence_diagram(trace: NetworkTrace, client: str = "client",
                            server_label: str = "server") -> str:
    """ASCII message chart in the style of the paper's Figure 1.

    Loopback round trips (a host talking to itself — §4.4's stub calls)
    render as self-arrows on the server's lifeline.  Timestamps show
    relative to the first event, so virtual-clock and monotonic-clock
    traces read the same.
    """
    events = trace.events()
    width = 34
    lines = [
        f"{client:<12}{'':{width}}{server_label}",
        f"{'|':<12}{'':{width}}|",
    ]
    base = events[0].started_at if events else 0.0
    for index, event in enumerate(events, start=1):
        stamp = f"t={(event.started_at - base) * 1e3:8.3f}ms"
        if event.loopback:
            lines.append(
                f"{'|':<12}{'':{width}}|--. loopback "
                f"({event.bytes_up}B) {stamp}"
            )
            lines.append(f"{'|':<12}{'':{width}}|<-'")
            continue
        arrow = "-" * (width - 2)
        lines.append(
            f"{'|':<12}{arrow}> [{index}] {event.bytes_up}B {stamp}"
        )
        lines.append(
            f"{'|':<11}<{arrow}- {event.bytes_down}B "
            f"(+{event.duration * 1e3:.3f}ms)"
        )
    lines.append(
        f"{'':12}{trace.round_trips(include_loopback=False)} network round "
        f"trip(s), {trace.total_bytes()} bytes total"
    )
    return "\n".join(lines)
