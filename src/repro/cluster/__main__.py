"""CLI for standing up a sharded BRMI cluster.

``serve`` spawns one ``python -m repro.aio serve --shard i/N`` process
per shard and prints the deployment on stdout, one line each::

    SHARDS 3
    ADDRESSES tcp://127.0.0.1:5001,tcp://127.0.0.1:5002,tcp://127.0.0.1:5003
    ADMIN tcp://127.0.0.1:6000        (with --admin-port)

then serves until stdin reaches EOF or a SIGTERM/SIGINT arrives, drains
every shard, and (with ``--metrics-json``) writes the merged
cluster-wide metrics registry.  Point ``python -m repro.obs top|health``
at the ADMIN address, and a :class:`~repro.cluster.client.ClusterClient`
at the ADDRESSES list (in order — the position is the shard index).
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading


def _install_shutdown_signals(stop_event: threading.Event) -> None:
    def request_stop(signum, frame):
        stop_event.set()

    for name in ("SIGTERM", "SIGINT"):
        signum = getattr(signal, name, None)
        if signum is None:
            continue
        try:
            signal.signal(signum, request_stop)
        except (ValueError, OSError):
            pass


def _watch_stdin(stop_event: threading.Event) -> None:
    def drain():
        try:
            sys.stdin.read()
        except Exception:  # noqa: BLE001 - any stdin failure means "stop"
            pass
        stop_event.set()

    threading.Thread(target=drain, name="cluster-stdin-eof",
                     daemon=True).start()


def _serve(args) -> int:
    from repro.cluster.supervisor import ClusterSupervisor

    admin = False
    if args.admin_port is not None:
        admin = 0 if args.admin_port == "auto" else int(args.admin_port)
        if admin == 0:
            admin = True
    supervisor = ClusterSupervisor(
        shards=args.shards, transport=args.transport,
        workers=args.workers, queue_depth=args.queue_depth,
        exec_workers=args.exec_workers,
        metrics_dir=args.metrics_dir or None,
        admin=admin,
    ).start()
    stop_event = threading.Event()
    _install_shutdown_signals(stop_event)
    _watch_stdin(stop_event)
    print(f"SHARDS {supervisor.shards}", flush=True)
    print(f"ADDRESSES {','.join(supervisor.addresses)}", flush=True)
    if args.admin_port is not None:
        print(f"ADMIN {supervisor.admin_address}", flush=True)
    clean = True
    while not stop_event.wait(0.2):
        if not supervisor.alive():
            clean = False
            break
    merged = supervisor.stop()
    if args.metrics_json:
        with open(args.metrics_json, "w", encoding="utf-8") as fh:
            json.dump(merged.to_dict(), fh, sort_keys=True)
        print(f"METRICS_JSON {args.metrics_json}", flush=True)
    if not clean:
        print("SHARD_DIED", flush=True)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="sharded multi-server BRMI cluster deployment",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run an N-shard cluster")
    serve.add_argument("--shards", type=int, default=2,
                       help="shard count (default 2)")
    serve.add_argument("--transport", default="aio", choices=("aio", "tcp"))
    serve.add_argument("--workers", type=int, default=64,
                       help="worker pool size per shard")
    serve.add_argument("--exec-workers", type=int, default=None,
                       metavar="N",
                       help="per-shard DAG-scheduler pool for parallel batch "
                            "execution: unset = shared default pool, "
                            "0 = serial only, N = private pool of N")
    serve.add_argument("--queue-depth", type=int, default=256,
                       help="admission queue depth per shard")
    serve.add_argument("--admin-port", default=None, metavar="PORT",
                       help="serve the cluster-wide admin aggregation on "
                            "this port ('auto' picks an ephemeral one)")
    serve.add_argument("--metrics-dir", default=None, metavar="DIR",
                       help="keep per-shard metrics dumps in DIR")
    serve.add_argument("--metrics-json", default=None, metavar="FILE",
                       help="write the merged cluster metrics to FILE on "
                            "shutdown")
    serve.set_defaults(func=_serve)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
