"""The cluster-facing client: N shard connections behind one facade.

A :class:`ClusterClient` owns one RMI client per shard (built over a
shared network, or handed in pre-built — e.g. the ``.sync`` facades of
:class:`~repro.aio.AioRMIClient` connections) plus the
:class:`~repro.cluster.shardmap.ShardMap` that places names.  ``lookup``
routes to the owning shard, ``create_batch`` opens a scatter-gather
:class:`~repro.cluster.batch.ClusterBatch`, and every ref/stub that
enters the client is validated against the layout — a ref stamped with a
foreign shard label (or an endpoint the cluster does not serve) raises a
typed :class:`~repro.rmi.exceptions.WrongShardError` instead of being
dispatched to the wrong server.

Plan-cache entries are naturally per-shard: each shard connection keeps
its own :class:`~repro.plan.client.PlanMemo`, and every server its own
content-addressed cache, so a plan installs on first repeat *per shard*
and a hash never crosses shard boundaries.
"""

from __future__ import annotations

from repro.cluster.batch import ClusterBatch
from repro.cluster.shardmap import ShardMap, parse_shard_label, shard_label
from repro.rmi.client import RMIClient
from repro.rmi.exceptions import WrongShardError
from repro.rmi.protocol import REGISTRY_OBJECT_ID
from repro.rmi.stub import Stub


class ClusterClient:
    """One logical client over a sharded cluster."""

    def __init__(self, network=None, addresses=(), *, retry=None,
                 clients=None, concurrent_flush: bool = True):
        addresses = tuple(addresses)
        if not addresses:
            raise ValueError("a cluster needs at least one shard address")
        if clients is None:
            if network is None:
                raise ValueError("pass a network (or pre-built clients=)")
            clients = [
                RMIClient(network, address, retry=retry)
                for address in addresses
            ]
            self._own_clients = True
        else:
            clients = list(clients)
            if len(clients) != len(addresses):
                raise ValueError(
                    f"{len(clients)} clients for {len(addresses)} addresses"
                )
            self._own_clients = False
        self._clients = clients
        self._addresses = addresses
        self._shard_map = ShardMap(len(addresses))
        #: Whether scatter-gather flushes may run shards in parallel
        #: threads.  Turned off for the deterministic sim transports
        #: (virtual time is not thread-safe); on for real transports.
        self.concurrent_flush = concurrent_flush

    # -- layout ------------------------------------------------------------

    @property
    def shard_map(self) -> ShardMap:
        return self._shard_map

    @property
    def shards(self) -> int:
        return len(self._clients)

    @property
    def addresses(self):
        return self._addresses

    def label_for(self, index: int) -> str:
        return shard_label(index, len(self._clients))

    def client_for(self, index: int):
        return self._clients[index]

    def shard_index_of(self, ref_or_stub) -> int:
        """Which shard owns this ref/stub; raise on a misrouted one."""
        ref = (ref_or_stub.remote_ref
               if isinstance(ref_or_stub, Stub) else ref_or_stub)
        if ref.shard:
            index, shards = parse_shard_label(ref.shard)
            if shards != len(self._clients):
                raise WrongShardError(
                    repr(ref), f"cluster of {len(self._clients)}", ref.shard
                )
            if ref.endpoint != self._addresses[index]:
                raise WrongShardError(
                    repr(ref), self._endpoint_label(ref.endpoint), ref.shard
                )
            return index
        try:
            return self._addresses.index(ref.endpoint)
        except ValueError:
            raise WrongShardError(
                repr(ref), "outside this cluster", "one of its shards"
            ) from None

    def _endpoint_label(self, endpoint: str) -> str:
        try:
            return self.label_for(self._addresses.index(endpoint))
        except ValueError:
            return "outside this cluster"

    # -- naming ------------------------------------------------------------

    def lookup(self, name: str) -> Stub:
        """Resolve *name* on its home shard (placement via the ShardMap)."""
        return self._clients[self._shard_map.index_of(name)].lookup(name)

    def bind(self, name: str, stub_or_obj) -> None:
        """Bind *name* on its home shard."""
        self._clients[self._shard_map.index_of(name)].bind(name, stub_or_obj)

    def verify_shards(self) -> None:
        """Ask every shard for its placement label and cross-check.

        A connection wired to the wrong server — shard i answering with
        a different label, or not part of an N-shard cluster at all —
        raises :class:`WrongShardError` before any real traffic flows.
        """
        for index, client in enumerate(self._clients):
            expected = self.label_for(index)
            reported = client.call(REGISTRY_OBJECT_ID, "shard_info", ())
            if reported != expected:
                raise WrongShardError(
                    f"shard connection {client.address!r}",
                    reported, expected,
                )

    # -- batching ----------------------------------------------------------

    def create_batch(self, policy=None,
                     reuse_plans: bool = False) -> ClusterBatch:
        """Open a scatter-gather batch across this cluster's shards."""
        return ClusterBatch(self, policy=policy, reuse_plans=reuse_plans)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._own_clients:
            for client in self._clients:
                client.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False
