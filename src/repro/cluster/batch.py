"""Cross-shard batch recording and scatter-gather execution.

A :class:`ClusterBatch` is the multi-server analogue of
:func:`repro.core.create_batch`: the caller obtains one batch proxy per
root stub via :meth:`ClusterBatch.on` and records against them exactly
as against a single-server batch.  Underneath, every root owns a
*chain* — an ordinary :class:`~repro.core.proxy.BatchRecorder` bound to
its shard's client — so each recorded call lands on the chain of its
target, and remote results never leave their home shard (the wire
protocol roots one ``__invoke_batch__`` at one object, and the §4.4
identity rule keeps results server-local).

Two cluster-specific mechanisms sit on top:

- **Split points.**  Only *arguments* can cross chains (targets cannot:
  a result's chain is its target's chain).  When a recorded call on
  chain A takes a batch proxy from chain B as an argument, the recorder
  falls back to a split: chain B records the ``__export__`` pseudo-op
  against that register, is flushed immediately (``flush_and_continue``,
  so the chain stays open), and the resulting stub — the register's
  :class:`~repro.wire.refs.RemoteRef` made live — is passed to A as a
  plain marshalled argument.  Shard A's executor then reaches the object
  through a real nested RMI call to shard B.  Slower than batching, but
  never a wrong answer.  Exports are record-time: a failed register
  raises its verdict from the recording call, and cursor state cannot be
  exported (typed error) — cursors stay shard-local.

- **Scatter-gather flush.**  ``flush()``/``flush_and_continue()`` ship
  every chain's pending segment, one thread per shard (chains sharing a
  shard flush sequentially over their shared connection), and merge
  outcomes back into the futures/proxies/cursors the caller already
  holds — program order is preserved because each row resolves in
  place.  A shard that dies mid-flush fails *that shard's rows only*
  with the underlying transport error; surviving shards' rows stay
  readable, and the flush itself raises a typed
  :class:`~repro.cluster.errors.ShardFailedError` (single-shard clusters
  re-raise the original error, keeping 1-shard behaviour identical to a
  single server).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.cluster.errors import ShardFailedError
from repro.core.errors import (
    BatchClosedError,
    NotInBatchError,
    UnsupportedBatchOperationError,
)
from repro.core.executor import EXPORT_OP
from repro.core.policies import POLICY_TYPES, default_policy
from repro.core.proxy import BatchProxy, BatchRecorder
from repro.core.recording import NONE_ID, ROOT_SEQ
from repro.net.conditions import CHARGE_PROXY_CREATE
from repro.plan.client import PlanningBatchProxy, PlanningBatchRecorder
from repro.rmi.marshal import marshal
from repro.rmi.remote import MethodSpec
from repro.rmi.stub import Stub

#: Synthetic spec for the executor's export pseudo-op: a value result
#: whose payload is the target itself (marshalled to its RemoteRef).
#: ``parallel_safe``: the export only reads the batch-local object
#: table, so a split point never forces a shard's sub-batch serial —
#: intra-shard chains still parallelize under scatter-gather.
EXPORT_SPEC = MethodSpec(name=EXPORT_OP, returns_kind="value",
                         returns_interface=None, parallel_safe=True)


class _ChainMixin:
    """Recorder hook shared by the plain and plan-reusing chain recorders.

    Intercepts exactly one case the single-server recorder rejects: a
    batch-proxy argument owned by a *sibling* chain of the same cluster
    batch becomes a split point instead of a :class:`NotInBatchError`.
    """

    _cluster = None  # assigned by ClusterBatch right after construction

    def _convert_one(self, value, owner):
        cluster = self._cluster
        if (cluster is not None and isinstance(value, BatchProxy)
                and value._recorder is not self):
            stub = cluster._export_for(value)
            return marshal(stub, self._client), owner
        return super()._convert_one(value, owner)


class _ChainRecorder(_ChainMixin, BatchRecorder):
    pass


class _PlanChainRecorder(_ChainMixin, PlanningBatchRecorder):
    pass


class _Chain:
    """One shard-local batch chain of a cluster batch."""

    __slots__ = ("shard_index", "label", "recorder", "root", "failed")

    def __init__(self, shard_index, label, recorder, root):
        self.shard_index = shard_index
        self.label = label
        self.recorder = recorder
        self.root = root
        self.failed = False


class ClusterBatch:
    """One scatter-gather batch over a :class:`~repro.cluster.client.
    ClusterClient`'s shards; see the module docstring for semantics."""

    def __init__(self, cluster, policy=None, reuse_plans: bool = False):
        if policy is None:
            policy = default_policy()
        if not isinstance(policy, POLICY_TYPES):
            raise TypeError(
                f"policy must be one of "
                f"{[cls.__name__ for cls in POLICY_TYPES]}"
            )
        self._cluster = cluster
        self._policy = policy
        self._reuse_plans = reuse_plans
        self._chains = []                  # creation order
        self._chain_by_recorder = {}       # id(recorder) -> _Chain
        self._chain_by_ref = {}            # (endpoint, object_id) -> _Chain
        self._exports = {}                 # (id(recorder), seq) -> Stub
        self._closed = False
        self._lock = threading.RLock()

    @property
    def chains(self) -> int:
        """How many root chains this batch spans (tests read this)."""
        return len(self._chains)

    @property
    def flush_count(self) -> int:
        """Flushes shipped by the busiest chain (splits included)."""
        return max((c.recorder.flush_count for c in self._chains), default=0)

    def on(self, stub: Stub) -> BatchProxy:
        """The batch proxy recording against *stub*'s chain.

        Idempotent per remote identity: asking twice for the same ref
        hands back the same chain root.  The stub's shard stamp (and its
        endpoint) are validated against the cluster layout — a misrouted
        ref raises :class:`~repro.rmi.exceptions.WrongShardError` here,
        before anything touches the network.
        """
        if isinstance(stub, BatchProxy):
            raise TypeError("already a batch proxy; pass the underlying stub")
        if not isinstance(stub, Stub):
            raise TypeError(
                f"ClusterBatch.on needs an RMI stub, got {type(stub).__name__}"
            )
        ref = stub.remote_ref
        with self._lock:
            if self._closed:
                raise BatchClosedError(
                    "this cluster batch was flushed; create a new one"
                )
            key = (ref.endpoint, ref.object_id)
            chain = self._chain_by_ref.get(key)
            if chain is None:
                chain = self._make_chain(stub)
                self._chain_by_ref[key] = chain
            return chain.root

    def _make_chain(self, stub: Stub) -> _Chain:
        shard_index = self._cluster.shard_index_of(stub)
        client = self._cluster.client_for(shard_index)
        specs = stub.method_specs()
        if self._reuse_plans:
            recorder = _PlanChainRecorder(stub, self._policy, client)
            root = PlanningBatchProxy(recorder, ROOT_SEQ, specs)
        else:
            recorder = _ChainRecorder(stub, self._policy, client)
            root = BatchProxy(recorder, ROOT_SEQ, specs)
        recorder.root = root
        recorder._cluster = self
        client.charge(CHARGE_PROXY_CREATE)
        chain = _Chain(shard_index, self._cluster.label_for(shard_index),
                       recorder, root)
        self._chains.append(chain)
        self._chain_by_recorder[id(recorder)] = chain
        return chain

    # -- split points ------------------------------------------------------

    def _export_for(self, proxy: BatchProxy) -> Stub:
        """Resolve a sibling chain's register to a live stub (split point)."""
        from repro.core.cursor import CursorProxy

        chain = self._chain_by_recorder.get(id(proxy._recorder))
        if chain is None:
            raise NotInBatchError(
                "argument batch object belongs to a different batch chain"
            )
        if isinstance(proxy, CursorProxy) or proxy._cursor_owner is not None:
            raise UnsupportedBatchOperationError(
                "cursor state cannot cross shards; only plain remote "
                "results can be passed between cluster chains"
            )
        if proxy._failure is not None:
            raise proxy._failure
        key = (id(proxy._recorder), proxy._seq)
        stub = self._exports.get(key)
        if stub is None:
            future = chain.recorder.record(proxy, EXPORT_SPEC, (), {})
            chain.root.flush_and_continue()
            stub = future.get()  # a failed register raises its verdict here
            self._exports[key] = stub
        return stub

    # -- flushing ----------------------------------------------------------

    def flush(self) -> None:
        """Scatter-gather execute every chain; the batch ends."""
        self._flush_all(keep_session=False)

    def flush_and_continue(self) -> None:
        """Scatter-gather execute, keeping every chain open for more."""
        self._flush_all(keep_session=True)

    def ok(self) -> None:
        """Re-raise the first chain-level failure, if any."""
        for chain in self._chains:
            chain.root.ok()

    def _flush_all(self, keep_session: bool) -> None:
        with self._lock:
            if self._closed:
                raise BatchClosedError(
                    "this cluster batch was already flushed"
                )
            live = [c for c in self._chains if not c.failed]
            by_shard = {}
            for chain in live:
                by_shard.setdefault(chain.shard_index, []).append(chain)
            groups = [by_shard[i] for i in sorted(by_shard)]
            failures = {}

            def flush_group(chains):
                for chain in chains:
                    try:
                        chain.recorder.flush(keep_session=keep_session)
                    except Exception as exc:  # noqa: BLE001 - per-shard rows
                        self._fail_chain(chain, exc)
                        failures.setdefault(chain.label, exc)

            if len(groups) <= 1 or not self._cluster.concurrent_flush:
                for group in groups:
                    flush_group(group)
            else:
                with ThreadPoolExecutor(max_workers=len(groups)) as pool:
                    list(pool.map(flush_group, groups))
            if not keep_session:
                self._closed = True
            if failures:
                ordered = [failures[label] for label in sorted(failures)]
                if len(failures) >= len(groups) or self._cluster.shards == 1:
                    # Every shard (or the only shard) is gone: behave
                    # like a single server and surface the raw error.
                    raise ordered[0]
                raise ShardFailedError(failures) from ordered[0]

    @staticmethod
    def _fail_chain(chain: _Chain, exc: BaseException) -> None:
        """Resolve every pending row of *chain* with *exc* and close it.

        The shard is gone: its futures raise *exc* from ``get()``, its
        proxies and cursors from ``ok()``, and the chain accepts no
        further recording — all without touching the other shards' rows.
        """
        recorder = chain.recorder
        with recorder._lock:
            for _seq, future in recorder._segment_futures:
                future._fail(exc)
            for proxy in recorder._segment_proxies:
                proxy._resolved = True
                proxy._failure = exc
            for cursor in recorder._segment_cursors:
                cursor._resolved = True
                cursor._sub_closed = True
                cursor._flushed = True
                cursor._failure = exc
            recorder._reset_segment()
            recorder._session_id = NONE_ID
            recorder._closed = True
        chain.root._failure = exc
        chain.failed = True
