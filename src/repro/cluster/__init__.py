"""Sharded multi-server clustering for BRMI (beyond the paper).

N servers own disjoint object sets placed by a stable
:class:`ShardMap`; a :class:`ClusterClient` records one batch program
across them and executes it scatter-gather, splitting at cross-shard
data dependencies.  See DESIGN.md's "cluster/" section for the
placement, split/merge, and failure semantics.
"""

from repro.cluster.batch import ClusterBatch
from repro.cluster.client import ClusterClient
from repro.cluster.errors import ShardFailedError
from repro.cluster.shardmap import ShardMap, parse_shard_label, shard_label

__all__ = [
    "ClusterBatch",
    "ClusterClient",
    "ShardFailedError",
    "ShardMap",
    "parse_shard_label",
    "shard_label",
]
