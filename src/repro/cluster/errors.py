"""Client-side cluster failure types.

:class:`~repro.rmi.exceptions.WrongShardError` (a server-raised routing
failure) lives with the other wire-registered RMI exceptions; the types
here only ever surface client-side from :class:`~repro.cluster.client.
ClusterBatch`.
"""

from __future__ import annotations

from repro.rmi.exceptions import RemoteError


class ShardFailedError(RemoteError):
    """A scatter-gather flush lost one or more shards (but not all).

    The dead shards' rows each carry the underlying transport failure
    (futures raise it from ``get()``, proxies from ``ok()``); rows on
    surviving shards resolved normally and stay readable.  ``causes``
    maps the failed shard labels to their original exceptions, and the
    first of them is chained as ``__cause__``.
    """

    def __init__(self, causes):
        self.causes = dict(causes)
        labels = ", ".join(sorted(self.causes))
        super().__init__(labels)
        self._labels = labels

    def __str__(self):
        return f"scatter-gather flush lost shard(s) {self._labels}"
