"""Deterministic name -> shard placement for a BRMI cluster.

A cluster of N servers owns disjoint object sets; placement of a *named*
root object is a pure function of its registry name, so every client —
and every server, via the registry's :class:`WrongShardError` guard —
computes the same home without coordination.

The hash is ``sha256``-based and therefore stable across processes,
platforms, and interpreter restarts.  ``hash()`` is deliberately never
used: CPython randomizes string hashes per process (PYTHONHASHSEED),
which would scatter the same name across different shards in different
processes — the exact bug the golden test in
``tests/test_cluster_shardmap.py`` pins against.

Shard identity travels as a *label* of the form ``"i/N"`` (shard index
``i`` of ``N``): servers stamp it into every :class:`~repro.wire.refs.
RemoteRef` they mint, so a ref carries its home.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Tuple


def shard_label(index: int, shards: int) -> str:
    """Render the canonical ``"i/N"`` placement label."""
    return f"{index}/{shards}"


def parse_shard_label(label: str) -> Tuple[int, int]:
    """Parse ``"i/N"`` into ``(index, shards)``; raise on malformed input."""
    try:
        index_text, _, shards_text = label.partition("/")
        index, shards = int(index_text), int(shards_text)
    except ValueError:
        raise ValueError(f"malformed shard label {label!r}; want 'i/N'") from None
    if shards < 1 or not 0 <= index < shards:
        raise ValueError(f"shard label out of range: {label!r}")
    return index, shards


class ShardMap:
    """Consistent name -> shard placement over *shards* servers."""

    def __init__(self, shards: int):
        if not isinstance(shards, int) or shards < 1:
            raise ValueError(f"a cluster needs at least one shard: {shards!r}")
        self._shards = shards

    @property
    def shards(self) -> int:
        return self._shards

    @property
    def labels(self) -> Tuple[str, ...]:
        return tuple(shard_label(i, self._shards) for i in range(self._shards))

    @staticmethod
    def digest_of(name: str) -> int:
        """The stable 64-bit placement digest of a name (process-invariant)."""
        raw = hashlib.sha256(name.encode("utf-8")).digest()
        return int.from_bytes(raw[:8], "big")

    def index_of(self, name: str) -> int:
        """Which shard (0-based) owns the object bound under *name*."""
        if not isinstance(name, str):
            raise TypeError(f"placement is by registry name: {name!r}")
        return self.digest_of(name) % self._shards

    def label_of(self, name: str) -> str:
        """The ``"i/N"`` label of the shard that owns *name*."""
        return shard_label(self.index_of(name), self._shards)

    # Alias with the signature the registry guard wants (name -> label).
    home_of = label_of

    def homed_name(self, base: str, shard: int) -> str:
        """The canonical binding name derived from *base* homed on *shard*.

        Returns *base* itself when the map already places it there,
        otherwise the first ``"base@k"`` that lands on *shard*.  Pure
        function of (base, shards, shard): every server and client of a
        cluster computes the same name with no coordination — this is
        how per-shard service instances (e.g. the load target) get
        registry names that satisfy the home guard.
        """
        if not 0 <= shard < self._shards:
            raise ValueError(f"no shard {shard} in a {self._shards}-cluster")
        for salt in itertools.count():
            name = f"{base}@{salt}" if salt else base
            if self.index_of(name) == shard:
                return name

    def __repr__(self):
        return f"<ShardMap {self._shards} shard(s)>"
