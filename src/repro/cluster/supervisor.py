"""Cluster deployment: one serve process per shard, one control plane.

Where :class:`repro.aio.supervisor.Supervisor` multiplies *acceptors* of
one logical server behind a shared ``SO_REUSEPORT`` port, the
:class:`ClusterSupervisor` stands up *shards*: N independent
``python -m repro.aio serve --shard i/N`` processes, each with its own
port, its own object table, and a registry guarded by the shared
:class:`~repro.cluster.shardmap.ShardMap` placement.  A
:class:`~repro.cluster.client.ClusterClient` pointed at
:attr:`addresses` talks to all of them.

The observability planes span the cluster the same way they span a
reuseport group: every shard serves its own admin endpoint, and the
supervisor aggregates them behind one cluster endpoint
(:attr:`admin_address`) built from the same
:func:`repro.obs.live.cluster_commands` — so ``python -m repro.obs
top|health`` against a sharded cluster needs no new verbs.  On stop,
per-shard metrics dumps merge through the registry's cross-process
merge semantics into one cluster-wide report.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import threading

from repro.cluster.shardmap import ShardMap, shard_label

#: Seconds stop() gives each shard to drain before escalating to kill.
DEFAULT_STOP_TIMEOUT = 30.0

#: Seconds start() waits for each shard to report its address.
DEFAULT_START_TIMEOUT = 30.0


class ClusterSupervisorError(RuntimeError):
    """A shard failed to start, or died while being supervised."""


class ClusterSupervisor:
    """Spawn and manage the serve processes of an N-shard cluster.

    *shards* is the cluster size; *transport*, *workers*, *queue_depth*
    configure each shard's serve runtime exactly like ``python -m
    repro.aio serve``.  *admin* turns on the introspection plane
    (``True`` for an ephemeral aggregation port, an int for a fixed
    one); *metrics_dir* keeps the per-shard metrics dumps (a temp dir
    removed after the merge by default).
    """

    def __init__(self, *, shards: int, transport: str = "aio",
                 host: str = "127.0.0.1", workers: int = 64,
                 queue_depth: int = 256, exec_workers: int = None,
                 metrics_dir=None,
                 start_timeout: float = DEFAULT_START_TIMEOUT,
                 admin: bool = False):
        if shards < 1:
            raise ValueError(f"shards must be >= 1: {shards}")
        self.shard_map = ShardMap(shards)
        self._shards = shards
        self._transport = transport
        self._host = host
        self._workers = workers
        self._queue_depth = queue_depth
        self._exec_workers = exec_workers
        self._start_timeout = start_timeout
        self._metrics_dir = metrics_dir
        self._own_metrics_dir = metrics_dir is None
        self._children = []
        self._addresses = []
        self._merged = None
        self._lock = threading.Lock()
        self._stopped = False
        self._admin_on = admin is not False and admin is not None
        self._admin_port = 0 if admin is True else (admin or 0)
        self._admin_server = None
        self._admin_addresses = []
        self._dump_errors = 0

    # -- introspection ---------------------------------------------------

    @property
    def shards(self) -> int:
        return self._shards

    @property
    def addresses(self) -> tuple:
        """Every shard's ``tcp://...`` address, in shard order."""
        if not self._addresses:
            raise RuntimeError("cluster supervisor is not started")
        return tuple(self._addresses)

    @property
    def labels(self) -> tuple:
        return self.shard_map.labels

    @property
    def pids(self) -> tuple:
        return tuple(child.pid for child in self._children)

    @property
    def admin_addresses(self) -> tuple:
        """Each shard's own admin endpoint (admin mode only)."""
        return tuple(self._admin_addresses)

    @property
    def admin_address(self) -> str:
        """The cluster-wide aggregation admin endpoint."""
        if self._admin_server is None:
            raise RuntimeError("cluster supervisor has no admin endpoint "
                               "(pass admin=True)")
        return self._admin_server.address

    @property
    def dump_errors(self) -> int:
        """Per-shard metrics dumps that could not be merged on stop."""
        return self._dump_errors

    def alive(self) -> bool:
        """True while every shard process is still running."""
        return bool(self._children) and all(
            child.poll() is None for child in self._children
        )

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "ClusterSupervisor":
        """Spawn every shard and wait for each to report its address."""
        if self._children:
            raise RuntimeError("cluster supervisor already started")
        if self._metrics_dir is None:
            self._metrics_dir = tempfile.mkdtemp(prefix="repro-cluster-")
        self._metrics_dir = str(self._metrics_dir)
        try:
            for index in range(self._shards):
                self._children.append(self._spawn(index))
            self._addresses = [
                self._read_line(child, "ADDRESS")
                for child in self._children
            ]
            if self._admin_on:
                self._admin_addresses = [
                    self._read_line(child, "ADMIN")
                    for child in self._children
                ]
                self._start_admin()
        except Exception:
            self._kill_all()
            self._release()
            raise
        return self

    def _start_admin(self) -> None:
        from repro.obs.live import AdminServer, cluster_commands

        def health_extra():
            return {
                "shards": self._shards,
                "shards_alive": sum(
                    1 for child in self._children if child.poll() is None
                ),
            }

        self._admin_server = AdminServer(cluster_commands(
            lambda: list(self._admin_addresses), health=health_extra,
        ), host=self._host, port=self._admin_port)

    def _spawn(self, index: int) -> subprocess.Popen:
        metrics_template = os.path.join(
            self._metrics_dir, f"metrics-shard{index}-{{pid}}.json"
        )
        cmd = [
            sys.executable, "-m", "repro.aio", "serve",
            "--transport", self._transport,
            "--port", "0",
            "--workers", str(self._workers),
            "--queue-depth", str(self._queue_depth),
            "--shard", shard_label(index, self._shards),
            "--metrics-json", metrics_template,
        ]
        if self._exec_workers is not None:
            cmd.extend(["--exec-workers", str(self._exec_workers)])
        if self._admin_on:
            cmd.extend(["--admin-port", "0"])
        env = dict(os.environ)
        src = str(pathlib.Path(__file__).resolve().parent.parent.parent)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            cmd, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            text=True, env=env,
        )

    def _read_line(self, child: subprocess.Popen, tag: str) -> str:
        """Read one ``TAG value`` startup line from a shard process."""
        timer = threading.Timer(self._start_timeout, child.kill)
        timer.start()
        try:
            line = child.stdout.readline().strip()
        finally:
            timer.cancel()
        if not line.startswith(tag + " "):
            raise ClusterSupervisorError(
                f"shard pid={child.pid} failed to start "
                f"(said {line!r} instead of a {tag} line)"
            )
        return line.split(" ", 1)[1]

    def stop(self, timeout: float = DEFAULT_STOP_TIMEOUT):
        """Drain every shard, reap, and merge their metrics dumps.

        Returns the merged cluster-wide
        :class:`~repro.obs.metrics.MetricsRegistry` (idempotent).
        """
        with self._lock:
            if self._stopped:
                return self._merged
            self._stopped = True
        if self._admin_server is not None:
            self._admin_server.close()
            self._admin_server = None
        for child in self._children:
            if child.poll() is None:
                try:
                    child.send_signal(signal.SIGTERM)
                except OSError:
                    pass
        for child in self._children:
            try:
                child.communicate(timeout=timeout)
            except subprocess.TimeoutExpired:
                child.kill()
                child.communicate(timeout=10.0)
        self._merged = self._merge_metrics()
        self._release()
        return self._merged

    def _merge_metrics(self):
        from repro.obs.metrics import MetricsRegistry

        merged = MetricsRegistry()
        if self._metrics_dir is None:  # stopped before start
            return merged
        directory = pathlib.Path(self._metrics_dir)
        for path in sorted(directory.glob("metrics-*.json")):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    dump = json.load(fh)
                MetricsRegistry.from_dict(dump)
            except (ValueError, OSError) as exc:
                self._dump_errors += 1
                print(f"WARNING: skipping unreadable metrics dump "
                      f"{path.name}: {exc}", file=sys.stderr, flush=True)
                continue
            merged.merge(dump)
        if self._dump_errors:
            merged.counter("cluster.dump_errors").inc(self._dump_errors)
        return merged

    def metrics_files(self) -> list:
        """The per-shard dump paths currently on disk."""
        return sorted(
            str(p) for p in pathlib.Path(self._metrics_dir).glob(
                "metrics-*.json"
            )
        )

    def _kill_all(self) -> None:
        for child in self._children:
            if child.poll() is None:
                child.kill()
        for child in self._children:
            try:
                child.communicate(timeout=10.0)
            except subprocess.TimeoutExpired:
                pass

    def _release(self) -> None:
        if self._admin_server is not None:
            self._admin_server.close()
            self._admin_server = None
        if self._own_metrics_dir and self._metrics_dir is not None:
            import shutil

            shutil.rmtree(self._metrics_dir, ignore_errors=True)

    def __enter__(self):
        return self.start() if not self._children else self

    def __exit__(self, *exc_info):
        self.stop()
        return False
