"""Seeded generation of random, well-typed batch programs.

Each program picks one application domain (the batch root is one stub)
and grows a straight-line script over typed registers:

- **bank** — account creation/lookup (raising and non-raising), card
  operations including over-limit purchases, a nested-list bulk
  purchase, and remote-identity passing (``credit_line_of(card)``);
- **linkedlist** — chained ``next_node`` traversals that sometimes walk
  off the end (``IndexError``) with dependent reads behind them;
- **fileserver** — navigation, metadata and content reads (restricted
  files raise), deletions, and ``list_files`` cursors with random
  sub-batches producing per-element results and exceptions;
- **noop** — pure call-count programs (the side-effect baseline).

Everything is driven by one ``random.Random(seed)`` stream, so a
``(seed, index)`` pair names a program forever — that is what the CLI's
``--seed`` replay and the shrinker's repro reports rely on.

Policies are generated alongside: the two paper defaults plus two
:class:`~repro.core.policies.CustomPolicy` variants whose rules draw
from the domain's exception pool.  Rules are restricted to
exception/method matching (no position-specific rules): positions are
*recording* sequence numbers, which a naive-RMI client does not have, so
position rules are outside the paper's equivalence claim.  REPEAT and
RESTART are likewise excluded — re-running side effects is precisely
what a sequence of individual calls cannot do.
"""

from __future__ import annotations

import random

from repro.core.policies import (
    AbortPolicy,
    ContinuePolicy,
    CustomPolicy,
    ExceptionAction,
)

from repro.fuzz.program import Program, Reg, Step, validate_program

#: Customers that exist in every bank world; "mallory" never does.
BANK_CUSTOMERS = ("alice", "bob", "carol")
BANK_UNKNOWN = ("mallory", "nobody")
BANK_LIMIT = 1000.0

#: Linked-list payloads (list length bounds the legal traversal depth).
LIST_VALUES = (11, 22, 33, 44, 55)

#: Flat directory for fileserver worlds; the restricted file raises
#: AccessDeniedError on length/read_contents.
FS_FILES = 5
FS_TOTAL_BYTES = 600
FS_RESTRICTED = ("file02.dat",)
FS_KNOWN = tuple(f"file{i:02d}.dat" for i in range(FS_FILES))
FS_UNKNOWN = ("ghost.dat", "missing.txt")

DOMAINS = ("bank", "linkedlist", "fileserver", "noop")

#: The policy axis (single source of truth — the CLI default and
#: FuzzConfig default derive from this).
POLICY_NAMES = ("abort", "continue", "custom-break", "custom-continue")

_EXCEPTION_POOLS = {
    "bank": (
        "repro.apps.bank.AccountNotFoundException",
        "repro.apps.bank.DuplicateAccountException",
        "repro.apps.bank.InsufficientCreditError",
        "builtins.ValueError",
    ),
    "linkedlist": ("builtins.IndexError",),
    "fileserver": (
        "repro.apps.fileserver.AccessDeniedError",
        "builtins.FileNotFoundError",
        "builtins.PermissionError",
    ),
    "noop": ("builtins.ValueError",),
}

#: Cursor sub-batch methods on RemoteFile (all value-returning).
_FS_SUB_METHODS = (
    "get_name", "is_directory", "last_modified", "length",
    "read_contents", "delete",
)


def generate_program(seed: int, index: int, max_steps: int = 14) -> Program:
    """Deterministically generate program *index* of corpus *seed*."""
    # String seeds hash deterministically across processes (tuple seeds
    # would go through PYTHONHASHSEED-salted hash()).
    rng = random.Random(f"{seed}:{index}:brmi-fuzz")
    domain = rng.choice(DOMAINS)
    steps = _DOMAIN_BUILDERS[domain](rng, max_steps)
    program = Program(
        domain=domain, steps=tuple(steps), seed=seed, index=index
    )
    validate_program(program)
    return program


def generate_corpus(seed: int, programs: int, max_steps: int = 14):
    """The first *programs* programs of corpus *seed*."""
    return [
        generate_program(seed, index, max_steps) for index in range(programs)
    ]


def policies_for(program: Program, names=None):
    """The policy axis for one program: name -> policy instance.

    The custom policies draw their rules from the program's domain
    exception pool with the program's own rng stream, so replaying a
    ``(seed, index)`` pair reproduces the exact policies too.
    """
    rng = random.Random(f"{program.seed}:{program.index}:brmi-fuzz-policy")
    # Multi-root cluster programs join their per-root domains with "+";
    # their custom policies draw from the union of the pools involved.
    pool = tuple(dict.fromkeys(
        exc
        for domain in program.domain.split("+")
        for exc in _EXCEPTION_POOLS[domain]
    ))
    custom_break = CustomPolicy(default_action=ExceptionAction.CONTINUE)
    custom_break.set_action(rng.choice(pool), ExceptionAction.BREAK)
    custom_continue = CustomPolicy(default_action=ExceptionAction.BREAK)
    custom_continue.set_action(rng.choice(pool), ExceptionAction.CONTINUE)
    axis = {
        "abort": AbortPolicy(),
        "continue": ContinuePolicy(),
        "custom-break": custom_break,
        "custom-continue": custom_continue,
    }
    assert tuple(axis) == POLICY_NAMES
    if names is not None:
        unknown = sorted(set(names) - set(axis))
        if unknown:
            from repro.fuzz.execute import FuzzHarnessError

            raise FuzzHarnessError(
                f"unknown policy name(s) {', '.join(unknown)}; "
                f"choose from {', '.join(sorted(axis))}"
            )
        axis = {name: axis[name] for name in names}
    return axis


# -- domain builders ---------------------------------------------------------


class _Builder:
    """Shared bookkeeping while growing one program's step list."""

    def __init__(self, rng):
        self.rng = rng
        self.steps = []
        self.seq = 0
        self.segment = 0

    def emit(self, target, method, args=(), kind="value", iface="",
             cursor=0):
        self.seq += 1
        step = Step(
            seq=self.seq,
            target=target,
            method=method,
            args=tuple(args),
            kind=kind,
            result_iface=iface,
            cursor=cursor,
            segment=self.segment,
        )
        self.steps.append(step)
        return self.seq

    def maybe_break_segment(self, probability=0.18):
        if self.steps and self.rng.random() < probability:
            self.segment += 1


def _build_bank(rng, max_steps):
    b = _Builder(rng)
    cards = []  # register seqs holding CreditCard results
    total = rng.randint(3, max_steps)
    while b.seq < total:
        b.maybe_break_segment()
        roll = rng.random()
        if roll < 0.30 or not cards:
            known = rng.random() < 0.75
            name = rng.choice(BANK_CUSTOMERS if known else BANK_UNKNOWN)
            method = rng.choice(
                ("find_credit_account", "create_credit_account")
            )
            cards.append(
                b.emit(0, method, (name,), kind="remote", iface="card")
            )
        elif roll < 0.45:
            b.emit(0, "credit_line_of", (Reg(rng.choice(cards)),))
        elif roll < 0.60:
            b.emit(rng.choice(cards), "get_credit_line")
        elif roll < 0.75:
            b.emit(rng.choice(cards), "make_purchase", (_amount(rng),))
        elif roll < 0.88:
            amounts = [_amount(rng) for _ in range(rng.randint(1, 3))]
            if rng.random() < 0.4:
                amounts = tuple(amounts)
            b.emit(rng.choice(cards), "make_purchases", (amounts,))
        else:
            b.emit(rng.choice(cards), "pay_balance", (_amount(rng),))
    return b.steps


def _amount(rng):
    roll = rng.random()
    if roll < 0.10:
        return -rng.randint(1, 3) * 1.0  # ValueError path
    if roll < 0.30:
        return float(rng.randint(4, 12) * 100)  # often over the line
    return float(rng.randint(1, 90))


def _build_linkedlist(rng, max_steps):
    b = _Builder(rng)
    nodes = [0]
    total = rng.randint(3, max_steps)
    while b.seq < total:
        b.maybe_break_segment()
        if rng.random() < 0.55:
            base = rng.choice(nodes)
            nodes.append(
                b.emit(base, "next_node", kind="remote", iface="node")
            )
        else:
            b.emit(rng.choice(nodes), "get_value")
    return b.steps


def _build_fileserver(rng, max_steps):
    b = _Builder(rng)
    files = []
    total = rng.randint(3, max_steps)
    while b.seq < total:
        b.maybe_break_segment()
        roll = rng.random()
        if roll < 0.22:
            known = rng.random() < 0.7
            name = rng.choice(FS_KNOWN if known else FS_UNKNOWN)
            files.append(
                b.emit(0, "get_file", (name,), kind="remote", iface="file")
            )
        elif roll < 0.30 and b.seq + 2 <= total:
            cursor = b.emit(0, "list_files", kind="cursor", iface="file")
            for method in rng.sample(
                _FS_SUB_METHODS, rng.randint(1, min(3, total - b.seq))
            ):
                b.emit(cursor, method, cursor=cursor)
        elif files:
            target = rng.choice(files)
            method = rng.choice(
                ("get_name", "length", "read_contents", "last_modified",
                 "is_directory", "delete")
            )
            b.emit(target, method)
        else:
            b.emit(0, rng.choice(("get_name", "last_modified", "length")))
    return b.steps


def _build_noop(rng, max_steps):
    b = _Builder(rng)
    total = rng.randint(2, max_steps)
    while b.seq < total:
        b.maybe_break_segment(0.12)
        b.emit(0, "noop")
    return b.steps


_DOMAIN_BUILDERS = {
    "bank": _build_bank,
    "linkedlist": _build_linkedlist,
    "fileserver": _build_fileserver,
    "noop": _build_noop,
}
