"""Corpus orchestration: worlds, the execution matrix, and reports.

One :func:`run_corpus` call drives the whole differential experiment:

    for each program:
      for each policy:
        oracle   = naive RMI on a localhost sim world   (fresh app state)
        for each transport (sim LAN, sim WIRELESS, real TCP):
          batch  = one-shot batch                        (fresh app state)
          plan   = reuse_plans batch, run three times    (fresh app state
                   per run, same client+server) so the same shape goes
                   inline, then installs, then hits the plan cache
          compare every run against the oracle

Worlds are persistent (one server per transport for the whole corpus);
state freshness comes from binding a new application instance under a
new name for every run, and a new client (with a fresh plan memo) for
every mode.  Divergences are shrunk to a minimal repro with
:func:`repro.fuzz.shrink.shrink_program` before being reported.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field

from repro.apps.bank import CreditManagerImpl
from repro.apps.fileserver import make_directory
from repro.apps.linkedlist import build_list
from repro.apps.noop import NoOpImpl
from repro.net import FaultSchedule, FaultyNetwork, SimNetwork, TcpNetwork, preset
from repro.rmi import RETRYABLE_ERRORS, RMIClient, RMIServer, RetryPolicy

from repro.fuzz.execute import (
    FuzzHarnessError,
    compare_runs,
    drop_call_injection,
    run_batched,
    run_oracle,
    swap_policy_injection,
)
from repro.fuzz.generate import (
    BANK_CUSTOMERS,
    BANK_LIMIT,
    FS_FILES,
    FS_RESTRICTED,
    FS_TOTAL_BYTES,
    LIST_VALUES,
    POLICY_NAMES,
    generate_program,
    policies_for,
)
from repro.fuzz.shrink import shrink_program

TRANSPORTS = ("lan", "wireless", "tcp")
MODES = ("batch", "plan")
INJECTIONS = {
    "drop-call": drop_call_injection,
    "swap-policy": swap_policy_injection,
}


#: Retry policy for chaos clients: persistent enough to outlast a dense
#: fault schedule, with backoffs short enough to keep corpora fast.
#: Deterministic schedule (no jitter): chaos corpora must replay
#: byte-for-byte from a seed, and delays this short need no herding fix.
CHAOS_RETRY = RetryPolicy(max_attempts=10, backoff_s=0.0005,
                          backoff_cap_s=0.004, jitter=False)

#: Flush failures a chaos run may legitimately end with — the typed
#: errors the batch contract promises when the network truly gives out.
#: Anything else (or a silently wrong result) is a divergence.
CLEAN_FAULT_ERRORS = frozenset({
    "repro.rmi.exceptions.CommunicationError",
    "repro.rmi.exceptions.ServerBusyError",
    "repro.net.transport.TransportError",
    "repro.net.transport.ConnectionClosedError",
    "repro.net.transport.ConnectError",
    "repro.net.transport.FaultInjectedError",
})


@dataclass(frozen=True)
class FuzzConfig:
    """One reproducible differential experiment.

    With *faults* enabled, every batch/plan run executes through a
    seeded fault-injecting transport (the oracle stays on a clean link)
    behind a retrying, exactly-once client.  The conformance rule
    becomes: a run must either match the oracle observable-for-
    observable, or fail its flush with one of the typed errors in
    :data:`CLEAN_FAULT_ERRORS` — never diverge silently.  The traffic
    bound is not enforced under faults (retries legitimately resend).
    """

    seed: int = 0
    programs: int = 20
    max_steps: int = 14
    transports: tuple = TRANSPORTS
    policies: tuple = POLICY_NAMES
    modes: tuple = MODES
    plan_runs: int = 3
    inject: str = ""
    shrink: bool = True
    check_traffic: bool = True
    max_divergences: int = 3
    faults: bool = False
    fault_rate: float = 0.12
    #: Shard count: > 1 routes the corpus through the sharded cluster
    #: matrix of :func:`repro.fuzz.cluster.run_cluster_corpus`.
    shards: int = 1
    #: Differential scheduler check: run every clean batch/plan cell a
    #: second time against a twin server whose DAG scheduler is disabled
    #: (``exec_workers=0``) and require the two responses to agree
    #: observable-for-observable.  The serial executor is the oracle for
    #: the parallel one; divergences are reported unshrunk.
    parallel: bool = False


@dataclass
class Divergence:
    """One confirmed difference between a mode run and the oracle."""

    program: object
    transport: str
    policy: str
    mode: str
    run_index: int
    diffs: list
    shrunk: object = None
    shrunk_diffs: list = field(default_factory=list)
    shrink_attempts: int = 0

    def describe(self) -> str:
        lines = [
            f"DIVERGENCE seed={self.program.seed} program=#{self.program.index} "
            f"transport={self.transport} policy={self.policy} "
            f"mode={self.mode} run={self.run_index}",
            self.program.describe(),
        ]
        lines += ["  diff: " + diff for diff in self.diffs]
        if self.shrunk is not None:
            lines.append(
                f"shrunk repro ({len(self.shrunk.steps)} steps, "
                f"{self.shrink_attempts} attempts):"
            )
            lines.append(self.shrunk.describe())
            lines += ["  diff: " + diff for diff in self.shrunk_diffs]
        return "\n".join(lines)

    def to_json(self) -> dict:
        shrunk = self.shrunk if self.shrunk is not None else self.program
        diffs = self.diffs
        if self.shrunk is not None and self.shrunk_diffs:
            diffs = self.shrunk_diffs  # match the diffs to the listed repro
        return {
            "seed": self.program.seed,
            "program": self.program.index,
            "transport": self.transport,
            "policy": self.policy,
            "mode": self.mode,
            "run": self.run_index,
            "diffs": diffs,
            "repro": shrunk.describe().splitlines(),
        }


@dataclass
class FuzzReport:
    """The corpus verdict plus enough accounting to trust the coverage."""

    config: FuzzConfig
    programs: int = 0
    runs: int = 0
    divergences: list = field(default_factory=list)
    coverage: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        cov = self.coverage
        lines = [
            f"fuzz: seed={self.config.seed} programs={self.programs} "
            f"runs={self.runs} divergences={len(self.divergences)}",
            f"  transports: {', '.join(sorted(cov.get('transports', ())))}",
            f"  policies:   {', '.join(sorted(cov.get('policies', ())))}",
            f"  domains:    {', '.join(sorted(cov.get('domains', ())))}",
            "  plan paths: inline=%d installs=%d invocations=%d "
            "cache_hits=%d" % (
                cov.get("plan_inline", 0),
                cov.get("plan_installs", 0),
                cov.get("plan_invocations", 0),
                cov.get("plan_cache_hits", 0),
            ),
        ]
        if self.config.parallel:
            lines.append(
                "  scheduler:  parallel_batches=%d elements=%d "
                "serial_fallbacks=%d" % (
                    cov.get("parallel_batches", 0),
                    cov.get("parallel_elements", 0),
                    cov.get("parallel_fallbacks", 0),
                )
            )
        if self.config.faults:
            lines.append(
                "  chaos:      fault_events=%d clean_failures=%d "
                "dedup_replays=%d" % (
                    cov.get("fault_events", 0),
                    cov.get("clean_failures", 0),
                    cov.get("dedup_replays", 0),
                )
            )
        return "\n".join(lines)


class World:
    """One transport universe: a network and a server that live for the
    whole corpus, handing out fresh bindings and clients per run.

    *exec_workers* configures the server's DAG scheduler exactly like
    :class:`~repro.rmi.server.RMIServer` — ``0`` builds the serial twin
    worlds the ``parallel`` differential mode compares against.
    """

    def __init__(self, transport: str, exec_workers: int = None):
        self.transport = transport
        if transport == "tcp":
            self.network = TcpNetwork()
            self.server = RMIServer(
                self.network, "tcp://127.0.0.1:0",
                exec_workers=exec_workers,
            ).start()
        else:
            self.network = SimNetwork(conditions=preset(transport))
            self.server = RMIServer(
                self.network, f"sim://{transport}-server:1099",
                exec_workers=exec_workers,
            ).start()
        self._names = itertools.count()

    def fresh_client(self, schedule: FaultSchedule = None) -> RMIClient:
        """A clean client, or (given a schedule) a chaos client whose
        transport injects that schedule's faults behind retries."""
        if schedule is None:
            return RMIClient(self.network, self.server.address)
        return RMIClient(
            FaultyNetwork(self.network, schedule),
            self.server.address,
            retry=CHAOS_RETRY,
        )

    def bind_fresh(self, domain: str):
        """Bind a brand-new application instance; returns (name, reader)."""
        impl, reader = _build_domain(domain)
        name = f"{domain}-{next(self._names)}"
        self.server.bind(name, impl)
        return name, reader

    def close(self) -> None:
        self.server.close()
        self.network.close()


def _build_domain(domain: str):
    """Fresh deterministic app state plus a post-state reader."""
    if domain == "noop":
        impl = NoOpImpl()
        return impl, lambda: impl.calls
    if domain == "bank":
        impl = CreditManagerImpl(default_limit=BANK_LIMIT)
        for customer in BANK_CUSTOMERS:
            impl.create_credit_account(customer)

        def read_bank():
            return {
                name: (card._balance, card._limit)
                for name, card in sorted(impl._accounts.items())
            }

        return impl, read_bank
    if domain == "linkedlist":
        return build_list(LIST_VALUES), lambda: None
    if domain == "fileserver":
        impl = make_directory(
            FS_FILES, FS_TOTAL_BYTES, restricted_names=FS_RESTRICTED
        )
        root = impl._node

        def read_fs():
            return sorted(
                (name, len(node.contents), node.restricted)
                for name, node in root.children.items()
            )

        return impl, read_fs
    raise FuzzHarnessError(f"unknown domain {domain!r}")


def run_corpus(config: FuzzConfig, log=None) -> FuzzReport:
    """Run the full differential matrix for one corpus."""
    unknown = sorted(set(config.transports) - set(TRANSPORTS))
    if unknown:
        raise FuzzHarnessError(
            f"unknown transport(s) {', '.join(unknown)}; "
            f"choose from {', '.join(TRANSPORTS)}"
        )
    unknown = sorted(set(config.modes) - set(MODES))
    if unknown:
        raise FuzzHarnessError(
            f"unknown mode(s) {', '.join(unknown)}; "
            f"choose from {', '.join(MODES)}"
        )
    inject = _injection_for(config)
    report = FuzzReport(config=config)
    coverage = report.coverage
    coverage.update(
        transports=set(), policies=set(), modes=set(), domains=set(),
        plan_inline=0, plan_installs=0, plan_invocations=0,
        plan_cache_hits=0, fault_events=0, clean_failures=0,
        dedup_replays=0, parallel_batches=0, parallel_elements=0,
        parallel_fallbacks=0,
    )
    worlds = {}
    serial_worlds = {}
    oracle_world = None
    oracle_client = None
    try:
        for name in config.transports:
            worlds[name] = World(name)
            if config.parallel:
                serial_worlds[name] = World(name, exec_workers=0)
        oracle_world = World("localhost")
        oracle_client = oracle_world.fresh_client()
        for index in range(config.programs):
            program = generate_program(config.seed, index, config.max_steps)
            report.programs += 1
            coverage["domains"].add(program.domain)
            if log is not None and index % 10 == 0:
                log(f"program #{index} ({program.domain}, "
                    f"{len(program.steps)} steps)")
            for policy_name, policy in policies_for(
                program, config.policies
            ).items():
                coverage["policies"].add(policy_name)
                oracle = _oracle_run(oracle_world, oracle_client, program,
                                     policy)
                report.runs += 1
                for transport in config.transports:
                    coverage["transports"].add(transport)
                    divergence = _check_program(
                        worlds[transport], program, policy_name, policy,
                        oracle, config, inject, report, coverage,
                        serial_world=serial_worlds.get(transport),
                    )
                    if divergence is not None:
                        _shrink_divergence(
                            divergence, worlds[transport], oracle_world,
                            oracle_client, policy, config, inject,
                        )
                        report.divergences.append(divergence)
                        if log is not None:
                            log(divergence.describe())
                        if len(report.divergences) >= config.max_divergences:
                            return report
    finally:
        # Accumulated here so early returns (max_divergences) still
        # report honest plan-path coverage in the failure summary.
        for world in worlds.values():
            cache_stats = world.server.plan_cache.stats.snapshot()
            coverage["plan_cache_hits"] += cache_stats.hits
            coverage["dedup_replays"] += world.server.dedup.hits
            executor = world.server._batch_executor
            if executor is not None:
                snap = executor.scheduler.snapshot()
                coverage["parallel_batches"] += snap["parallel_batches"]
                coverage["parallel_elements"] += snap["elements"]
                coverage["parallel_fallbacks"] += snap["serial_batches"]
        if oracle_client is not None:
            oracle_client.close()
        if oracle_world is not None:
            oracle_world.close()
        for world in worlds.values():
            world.close()
        for world in serial_worlds.values():
            world.close()
    return report


def _injection_for(config: FuzzConfig):
    if not config.inject:
        return None
    try:
        return INJECTIONS[config.inject]
    except KeyError:
        raise FuzzHarnessError(
            f"unknown injection {config.inject!r}; "
            f"choose from {sorted(INJECTIONS)}"
        ) from None


def _oracle_run(world, client, program, policy):
    name, reader = world.bind_fresh(program.domain)
    stub = client.lookup(name)
    result = run_oracle(program, stub, policy)
    result.post_state = reader()
    return result


def _chaos_schedule(config, *parts) -> FaultSchedule:
    """A deterministic fault schedule for one cell of the matrix.

    The seed is derived from the corpus seed plus the cell coordinates,
    so every (program, policy, transport, mode) cell sees its own —
    reproducible — fault pattern, stable across reruns and shrinking.
    """
    if not config.faults:
        return None
    key = ":".join(str(part) for part in (config.seed,) + parts)
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return FaultSchedule(
        seed=int.from_bytes(digest[:8], "big"),
        rate=config.fault_rate,
        delay_s=0.0005,
    )


def _clean_fault_failure(result) -> bool:
    """Whether a chaos run ended in an allowed typed transport error."""
    return bool(result.flush_error) and result.flush_error in CLEAN_FAULT_ERRORS


def _check_program(world, program, policy_name, policy, oracle, config,
                   inject, report, coverage, serial_world=None):
    """Run all modes of one (program, policy, transport) cell.

    Returns the first :class:`Divergence`, or None when everything
    matched the oracle (or, under faults, failed cleanly with a typed
    transport error).  With *serial_world* given (the ``parallel``
    differential), every clean run also executes on the serial twin and
    the twin's response becomes the oracle for the parallel one.
    """
    for mode in config.modes:
        coverage["modes"].add(mode)
        schedule = _chaos_schedule(
            config, program.index, policy_name, world.transport, mode
        )
        client = world.fresh_client(schedule)
        # The twin gets its own client so plan mode walks the same
        # inline -> install -> invoke progression on both servers.
        serial_client = None
        if serial_world is not None and schedule is None:
            serial_client = serial_world.fresh_client()
        try:
            runs = config.plan_runs if mode == "plan" else 1
            for run_index in range(runs):
                try:
                    result = _mode_run(
                        world, client, program, policy, mode, inject
                    )
                except RETRYABLE_ERRORS:
                    if schedule is None:
                        raise
                    # Retries exhausted before the run could even start
                    # (e.g. the lookup kept failing): a clean, typed
                    # failure — nothing executed, nothing to compare.
                    coverage["clean_failures"] += 1
                    report.runs += 1
                    continue
                report.runs += 1
                if schedule is not None and _clean_fault_failure(result):
                    # The batch contract under failure: flush raised a
                    # typed transport error.  Partial segments may have
                    # applied (each flushed segment is exactly-once),
                    # so there is no full-program oracle to compare to.
                    coverage["clean_failures"] += 1
                    continue
                diffs = compare_runs(
                    oracle, result,
                    check_traffic=config.check_traffic and schedule is None,
                )
                if diffs:
                    return Divergence(
                        program=program,
                        transport=world.transport,
                        policy=policy_name,
                        mode=mode,
                        run_index=run_index,
                        diffs=diffs,
                    )
                if serial_client is not None:
                    serial_result = _mode_run(
                        serial_world, serial_client, program, policy, mode,
                        inject,
                    )
                    report.runs += 1
                    diffs = compare_runs(serial_result, result,
                                         check_traffic=config.check_traffic)
                    if diffs:
                        return Divergence(
                            program=program,
                            transport=world.transport,
                            policy=policy_name,
                            mode=f"{mode}+parallel",
                            run_index=run_index,
                            diffs=diffs,
                        )
        finally:
            if mode == "plan":
                memo = client.plan_memo
                coverage["plan_inline"] += memo.inline_flushes
                coverage["plan_installs"] += memo.plan_installs
                coverage["plan_invocations"] += memo.plan_invocations
            if schedule is not None:
                coverage["fault_events"] += schedule.injected
            client.close()
            if serial_client is not None:
                serial_client.close()
    return None


def _mode_run(world, client, program, policy, mode, inject):
    name, reader = world.bind_fresh(program.domain)
    stub = client.lookup(name)
    result = run_batched(
        program, stub, policy, reuse_plans=(mode == "plan"), inject=inject
    )
    result.post_state = reader()
    return result


def _shrink_divergence(divergence, world, oracle_world, oracle_client,
                       policy, config, inject):
    """Reduce a diverging program while it still diverges."""
    if not config.shrink:
        return
    if divergence.mode.endswith("+parallel"):
        # Scheduler divergences compare two batch runs, not a run
        # against the RMI oracle; the shrink loop below would re-judge
        # candidates against the wrong oracle.  Report them unshrunk.
        return
    mode = divergence.mode
    runs = config.plan_runs if mode == "plan" else 1
    # Memoized on the rendered program so the post-shrink diff read-back
    # reuses the accepted candidate's comparison instead of re-running it.
    seen = {}

    def diverges(candidate):
        key = candidate.describe()
        if key in seen:
            return seen[key]
        oracle = _oracle_run(oracle_world, oracle_client, candidate, policy)
        # A fresh schedule per candidate replays the cell's exact fault
        # stream, so chaos-born divergences stay reproducible while
        # shrinking.
        schedule = _chaos_schedule(
            config, divergence.program.index, divergence.policy,
            world.transport, mode,
        )
        client = world.fresh_client(schedule)
        diffs = []
        try:
            for _ in range(runs):
                try:
                    result = _mode_run(
                        world, client, candidate, policy, mode, inject
                    )
                except RETRYABLE_ERRORS:
                    if schedule is None:
                        raise
                    continue  # clean typed failure: not a divergence
                if schedule is not None and _clean_fault_failure(result):
                    continue
                diffs = compare_runs(
                    oracle, result,
                    check_traffic=config.check_traffic and schedule is None,
                )
                if diffs:
                    break
        finally:
            client.close()
        seen[key] = diffs
        return diffs

    shrunk, attempts = shrink_program(divergence.program, diverges)
    divergence.shrunk = shrunk
    divergence.shrink_attempts = attempts
    divergence.shrunk_diffs = diverges(shrunk) or list(divergence.diffs)
