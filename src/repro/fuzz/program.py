"""The fuzzer's program model: randomized but well-typed batch programs.

A :class:`Program` is a straight-line script over *registers*.  Register
0 is the root stub of the program's application domain; every step's
result occupies the register named by its ``seq``.  Steps reference
earlier remote registers as targets and — via :class:`Reg` markers
nested anywhere inside their literal arguments — as arguments, which is
exactly the shape the batch recorder accepts (chained calls,
remote-identity passing, nested data values).

Programs are split into *segments*: the batch driver issues
``flush_and_continue`` between segments and ``flush`` after the last,
so a multi-segment program exercises chained batches and server-side
sessions.  A step whose ``cursor`` field names an earlier cursor step is
part of that cursor's sub-batch and must sit contiguously behind it
(the recorder's §4.1 contiguity rule) — the generator and the shrinker
both maintain that invariant, and :func:`validate_program` checks it.

The model is deliberately independent of any transport or execution
mode: the same program is interpreted by the naive-RMI oracle and
recorded through the batch/plan proxies, and the outcomes are compared.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

#: Register id of the program's (first) root stub.  Multi-root cluster
#: programs use 0, -1, ... -(roots-1): root registers never collide with
#: step registers, which are positive seqs.
ROOT_REG = 0


def root_reg(chain: int) -> int:
    """Register id of root *chain* (0-based) of a multi-root program."""
    return ROOT_REG - chain


@dataclass(frozen=True)
class Reg:
    """A reference to the remote result of an earlier step."""

    seq: int

    def __repr__(self):
        return f"r{self.seq}"


@dataclass(frozen=True)
class Step:
    """One remote invocation of the program.

    ``kind`` mirrors the interface metadata: ``value`` steps produce
    futures, ``remote`` steps produce new registers, ``cursor`` steps
    produce iterable cursors whose sub-steps carry this step's seq in
    their own ``cursor`` field.
    """

    seq: int
    target: int
    method: str
    args: Tuple = ()
    kind: str = "value"
    result_iface: str = ""
    cursor: int = 0
    segment: int = 0

    def arg_regs(self):
        """Registers referenced anywhere in this step's arguments."""
        return tuple(_regs_in(self.args))

    def describe(self) -> str:
        rendered = ", ".join(_render(arg) for arg in self.args)
        prefix = f"seg{self.segment} " if self.segment else ""
        sub = f" [in cursor r{self.cursor}]" if self.cursor else ""
        return (
            f"{prefix}r{self.seq} = r{self.target}.{self.method}({rendered})"
            f" -> {self.kind}{sub}"
        )


@dataclass(frozen=True)
class Program:
    """A complete fuzz case: domain, steps, and provenance for replay."""

    domain: str
    steps: Tuple[Step, ...]
    seed: int = 0
    index: int = 0
    notes: Tuple[str, ...] = field(default_factory=tuple)
    #: Root count: roots > 1 makes this a cluster program whose root
    #: registers are 0, -1, ... -(roots-1), one batch chain each.
    roots: int = 1

    @property
    def segments(self) -> int:
        return (max((s.segment for s in self.steps), default=0)) + 1

    @property
    def root_regs(self) -> Tuple[int, ...]:
        return tuple(root_reg(chain) for chain in range(self.roots))

    def chain_of(self) -> dict:
        """Map every register (roots and steps) to its chain index.

        A step's chain is its target's chain — results never leave their
        root's chain; only arguments cross (the cluster split rule).
        """
        chains = {root_reg(chain): chain for chain in range(self.roots)}
        for step in self.steps:
            chains[step.seq] = chains[step.target]
        return chains

    def step(self, seq: int) -> Step:
        for candidate in self.steps:
            if candidate.seq == seq:
                return candidate
        raise KeyError(seq)

    def sub_steps(self, cursor_seq: int):
        return tuple(s for s in self.steps if s.cursor == cursor_seq)

    def describe(self) -> str:
        rooting = f", {self.roots} roots" if self.roots > 1 else ""
        header = (
            f"program #{self.index} (domain={self.domain}, seed={self.seed}, "
            f"{len(self.steps)} steps, {self.segments} segment(s){rooting})"
        )
        lines = [header] + ["  " + step.describe() for step in self.steps]
        return "\n".join(lines)

    def without_steps(self, doomed) -> "Program":
        """Drop *doomed* seqs plus everything depending on them.

        Dependency closure covers targets, argument registers, and cursor
        membership, so the result is always a valid program again.
        """
        doomed = set(doomed)
        changed = True
        while changed:
            changed = False
            for step in self.steps:
                if step.seq in doomed:
                    continue
                needs = {step.target} | {r.seq for r in step.arg_regs()}
                if step.cursor:
                    needs.add(step.cursor)
                # Root registers (0, -1, ...) are never doomed.
                needs = {need for need in needs if need > ROOT_REG}
                if needs & doomed:
                    doomed.add(step.seq)
                    changed = True
        kept = tuple(s for s in self.steps if s.seq not in doomed)
        return replace(self, steps=kept)

    def merged_segments(self) -> "Program":
        """The same steps as one unchained batch."""
        return replace(
            self, steps=tuple(replace(s, segment=0) for s in self.steps)
        )


def _regs_in(value):
    if isinstance(value, Reg):
        yield value
    elif isinstance(value, (list, tuple, set, frozenset)):
        for item in value:
            yield from _regs_in(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _regs_in(item)


def _render(value):
    if isinstance(value, Reg):
        return repr(value)
    if isinstance(value, (list, tuple)):
        inner = ", ".join(_render(v) for v in value)
        return f"[{inner}]" if isinstance(value, list) else f"({inner})"
    return repr(value)


def validate_program(program: Program) -> None:
    """Raise ``ValueError`` when a program violates the model invariants.

    The generator and shrinker only ever produce valid programs; this is
    the executable statement of what "valid" means (and a unit-test
    oracle for both).
    """
    if program.roots < 1:
        raise ValueError(f"a program needs at least one root: {program.roots}")
    seen = {reg: "remote" for reg in program.root_regs}
    segment = 0
    previous_seq = 0
    open_cursor = 0
    for step in program.steps:
        if step.seq <= previous_seq:
            raise ValueError(f"step seqs must increase: {step.describe()}")
        previous_seq = step.seq
        if step.segment < segment:
            raise ValueError(f"segments must be ordered: {step.describe()}")
        if step.segment > segment:
            segment = step.segment
        wanted = "cursor" if step.cursor else "remote"
        if seen.get(step.target) != wanted:
            raise ValueError(f"undefined target register: {step.describe()}")
        for reg in step.arg_regs():
            if reg.seq not in seen or seen[reg.seq] != "remote":
                raise ValueError(
                    f"argument r{reg.seq} is not a remote register: "
                    f"{step.describe()}"
                )
        if step.cursor:
            owner = program.step(step.cursor)
            if owner.kind != "cursor" or owner.segment != step.segment:
                raise ValueError(f"bad cursor membership: {step.describe()}")
            if open_cursor != step.cursor:
                raise ValueError(
                    f"cursor sub-steps must be contiguous: {step.describe()}"
                )
            if step.kind != "value":
                raise ValueError(
                    f"cursor sub-steps must return values: {step.describe()}"
                )
            if step.target != step.cursor:
                raise ValueError(
                    f"cursor sub-steps must target their cursor: "
                    f"{step.describe()}"
                )
        else:
            open_cursor = step.seq if step.kind == "cursor" else 0
        if step.kind not in ("value", "remote", "cursor"):
            raise ValueError(f"unknown step kind: {step.describe()}")
        seen[step.seq] = "remote" if step.kind == "remote" else step.kind
