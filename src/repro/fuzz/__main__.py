"""Command-line driver for the differential conformance fuzzer.

Usage::

    python -m repro.fuzz --seed 0 --programs 50     # the smoke corpus
    python -m repro.fuzz --seed 7 --programs 500    # a nightly corpus
    python -m repro.fuzz --seed 0 --faults          # chaos conformance
    python -m repro.fuzz --seed 0 --inject-bug drop-call   # must fail
    python -m repro.fuzz --seed 0 --programs 5 --show      # print programs

Exit status 0 means every run of every program matched the naive-RMI
oracle on every transport, policy, and execution mode; 1 means a
divergence was found (the shrunk repro is printed, and written as JSON
when ``--repro-out`` is given).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.fuzz.execute import FuzzHarnessError
from repro.fuzz.generate import POLICY_NAMES, generate_program
from repro.fuzz.runner import (
    INJECTIONS,
    MODES,
    TRANSPORTS,
    FuzzConfig,
    run_corpus,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential conformance fuzzing: randomized batch "
        "programs checked against a naive-RMI oracle.",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="corpus seed (default 0)")
    parser.add_argument("--programs", type=int, default=20,
                        help="number of programs to generate (default 20)")
    parser.add_argument("--max-steps", type=int, default=14,
                        help="maximum steps per program (default 14)")
    parser.add_argument("--transports", default=",".join(TRANSPORTS),
                        help="comma list of transports "
                        f"(default {','.join(TRANSPORTS)})")
    parser.add_argument("--policies", default=",".join(POLICY_NAMES),
                        help="comma list of exception policies "
                        f"(default {','.join(POLICY_NAMES)})")
    parser.add_argument("--modes", default=",".join(MODES),
                        help="comma list of execution modes "
                        f"(default {','.join(MODES)})")
    parser.add_argument("--shards", type=int, default=1, metavar="N",
                        help="run the corpus through an N-shard cluster: "
                        "multi-root programs, scatter-gather batches, and "
                        "a sharded per-chain oracle (default 1 = single "
                        "server)")
    parser.add_argument("--parallel", action="store_true",
                        help="differentially check the DAG scheduler: run "
                        "every clean batch/plan cell a second time against "
                        "a serial-executor twin server and require "
                        "identical observables")
    parser.add_argument("--faults", action="store_true",
                        help="replay every batch/plan run through a seeded "
                        "fault-injecting transport behind exactly-once "
                        "retries; runs must match the oracle or fail with "
                        "a typed transport error")
    parser.add_argument("--fault-rate", type=float, default=0.12,
                        metavar="P", help="per-exchange fault probability "
                        "under --faults (default 0.12)")
    parser.add_argument("--inject-bug", default="", metavar="NAME",
                        choices=[""] + sorted(INJECTIONS),
                        help="plant a deliberate defect "
                        f"({', '.join(sorted(INJECTIONS))}); the fuzzer "
                        "must then find and shrink it")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report divergences without shrinking")
    parser.add_argument("--repro-out", metavar="PATH",
                        help="write shrunk repros as JSON to PATH on failure")
    parser.add_argument("--show", action="store_true",
                        help="print each generated program instead of "
                        "executing the corpus")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress output")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.show:
        for index in range(args.programs):
            if args.shards > 1:
                from repro.fuzz.cluster import generate_cluster_program

                program = generate_cluster_program(
                    args.seed, index,
                    roots=max(2, min(args.shards + 1, 4)),
                    max_steps=args.max_steps,
                )
            else:
                program = generate_program(args.seed, index, args.max_steps)
            print(program.describe())
            print()
        return 0

    config = FuzzConfig(
        seed=args.seed,
        programs=args.programs,
        max_steps=args.max_steps,
        transports=tuple(args.transports.split(",")),
        policies=tuple(args.policies.split(",")),
        modes=tuple(args.modes.split(",")),
        inject=args.inject_bug,
        shrink=not args.no_shrink,
        faults=args.faults,
        fault_rate=args.fault_rate,
        shards=args.shards,
        parallel=args.parallel,
    )
    log = None if args.quiet else lambda line: print(line, flush=True)
    try:
        if config.shards > 1:
            from repro.fuzz.cluster import run_cluster_corpus

            report = run_cluster_corpus(config, log=log)
        else:
            report = run_corpus(config, log=log)
    except FuzzHarnessError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.summary())
    if report.ok:
        print("conformance: every run matched the naive-RMI oracle")
        return 0
    for divergence in report.divergences:
        print()
        print(divergence.describe())
    if args.repro_out:
        with open(args.repro_out, "w", encoding="utf-8") as fh:
            json.dump(
                [d.to_json() for d in report.divergences], fh, indent=2
            )
        print(f"\nrepros written to {args.repro_out}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
