"""Differential fuzzing of the sharded cluster path.

Cluster programs are multi-root: register 0, -1, ... each hold the root
stub of an independent application instance (its own batch *chain*), and
placement spreads the roots across the cluster's shards.  Two bank roots
are always present so programs can exercise the one operation that
crosses chains — passing a card minted on one chain to another chain's
``credit_line_of`` — which the scatter-gather batch must turn into a
split point.

The *sharded oracle* (:func:`run_cluster_oracle`) reuses the
single-server oracle's step interpreter with one change: the BREAK
state is tracked **per chain**, because every chain is its own batch —
a policy break on one shard's batch never aborts another shard's rows.
Cross-chain arguments need no extra modelling thanks to the invariant
the generator maintains (checked by :func:`validate_cluster_program`):

- a cross-chain argument register always comes from an *earlier*
  segment, so at record time it is already resolved — a failed register
  kills the consuming step at record time on both paths, and a live one
  marshals to a plain stub with no flush-time dependency edge;
- the producer chain records **no calls at all** in the consumer's
  segment: the split's early ``flush_and_continue`` then ships *only*
  export pseudo-ops (it cannot break), and — crucially — no
  producer-side effect can race the consumer's nested read.  Shard
  sub-batches of one segment flush in unspecified relative order
  (concurrently over TCP), so a producer mutation recorded anywhere in
  the consumer's segment may execute before *or* after the cross-shard
  read; a stepless producer segment is what makes program order the
  only observable order.

Violating either clause would not make the cluster wrong — splits are
always safe, and chains are as independent as separate clients — but it
would make this oracle's sequential per-chain interpretation unsound,
so the generator never does and the shrinker's candidates are filtered
through the same validator.
"""

from __future__ import annotations

import itertools
import random

from repro.cluster import ClusterClient, ShardMap, shard_label
from repro.net import FaultyNetwork, SimNetwork, TcpNetwork, preset
from repro.rmi import RETRYABLE_ERRORS, RMIServer

from repro.fuzz.execute import (
    FuzzHarnessError,
    RunResult,
    _collect_batch_outcomes,
    _group_segments,
    _materialize,
    _oracle_cursor,
    _oracle_step,
    _record_blocker,
    compare_runs,
    exc_key,
    outcome_from_exc,
)
from repro.fuzz.generate import (
    BANK_CUSTOMERS,
    BANK_UNKNOWN,
    DOMAINS,
    FS_KNOWN,
    FS_UNKNOWN,
    _amount,
    _Builder,
    _FS_SUB_METHODS,
    policies_for,
)
from repro.fuzz.program import Program, Reg, root_reg, validate_program
from repro.fuzz.shrink import shrink_program

__all__ = [
    "ClusterWorld",
    "cluster_domains",
    "generate_cluster_program",
    "run_cluster_batched",
    "run_cluster_corpus",
    "run_cluster_oracle",
    "validate_cluster_program",
]


def cluster_domains(program: Program):
    """Per-root domains of a cluster program (joined with '+' in .domain)."""
    domains = tuple(program.domain.split("+"))
    if len(domains) != program.roots:
        raise FuzzHarnessError(
            f"program has {program.roots} roots but domains {domains!r}"
        )
    return domains


# -- generation --------------------------------------------------------------


class _ChainState:
    """Typed registers one chain has produced so far."""

    def __init__(self, chain: int, domain: str):
        self.chain = chain
        self.domain = domain
        self.root = root_reg(chain)
        self.cards = {}  # seq -> segment it was created in (bank)
        self.nodes = [self.root]  # linkedlist registers
        self.files = []  # fileserver registers


def generate_cluster_program(seed: int, index: int, roots: int = 2,
                             max_steps: int = 18) -> Program:
    """Deterministically generate multi-root cluster program *index*."""
    if roots < 2:
        raise FuzzHarnessError(
            f"cluster programs need at least two roots, got {roots}"
        )
    rng = random.Random(f"{seed}:{index}:{roots}:brmi-cluster-fuzz")
    # Two bank chains always exist: they are the only chains that can
    # exchange registers (credit_line_of takes a card), and without them
    # a corpus would never exercise split points.
    domains = ["bank", "bank"] + [
        rng.choice(DOMAINS) for _ in range(roots - 2)
    ]
    rng.shuffle(domains)
    states = [_ChainState(chain, domain)
              for chain, domain in enumerate(domains)]
    banks = [s for s in states if s.domain == "bank"]
    b = _Builder(rng)
    total = rng.randint(roots + 2, max(max_steps, roots + 4))
    touched = set()  # chains with any step in the current segment
    exporters = set()  # chains serving as cross-chain producers this segment
    while b.seq < total:
        if b.steps and rng.random() < 0.18:
            b.segment += 1
            touched = set()
            exporters = set()
            # Cross-chain consumers live right at the fresh boundary,
            # while every producer chain is still clean this segment.
            while rng.random() < 0.55:
                if not _emit_cross_chain(b, banks, touched, exporters, rng):
                    break
        # Producer chains stay stepless for the rest of their segment:
        # a same-segment producer step could flush before or after the
        # consumer's nested read, which program order cannot model.
        state = rng.choice([s for s in states if s.chain not in exporters])
        _EMITTERS[state.domain](b, state, rng, total)
        touched.add(state.chain)
    program = Program(
        domain="+".join(domains), steps=tuple(b.steps), seed=seed,
        index=index, roots=roots,
    )
    validate_program(program)
    validate_cluster_program(program)
    return program


def _emit_cross_chain(b, banks, touched, exporters, rng) -> bool:
    """One consumer-chain ``credit_line_of(card from another chain)``."""
    pairs = []
    for consumer in banks:
        if consumer.chain in exporters:
            continue  # an exporting chain must stay stepless
        for producer in banks:
            if producer.chain == consumer.chain:
                continue
            if producer.chain in touched:
                continue  # producer already recorded in this segment
            eligible = [seq for seq, segment in producer.cards.items()
                        if segment < b.segment]
            if eligible:
                pairs.append((consumer, producer, eligible))
    if not pairs:
        return False
    consumer, producer, eligible = rng.choice(pairs)
    b.emit(consumer.root, "credit_line_of", (Reg(rng.choice(eligible)),))
    touched.add(consumer.chain)
    exporters.add(producer.chain)
    return True


def _emit_bank(b, state, rng, total):
    cards = sorted(state.cards)
    roll = rng.random()
    if roll < 0.30 or not cards:
        known = rng.random() < 0.75
        name = rng.choice(BANK_CUSTOMERS if known else BANK_UNKNOWN)
        method = rng.choice(("find_credit_account", "create_credit_account"))
        seq = b.emit(state.root, method, (name,), kind="remote", iface="card")
        state.cards[seq] = b.segment
    elif roll < 0.45:
        b.emit(state.root, "credit_line_of", (Reg(rng.choice(cards)),))
    elif roll < 0.60:
        b.emit(rng.choice(cards), "get_credit_line")
    elif roll < 0.75:
        b.emit(rng.choice(cards), "make_purchase", (_amount(rng),))
    elif roll < 0.88:
        amounts = [_amount(rng) for _ in range(rng.randint(1, 3))]
        if rng.random() < 0.4:
            amounts = tuple(amounts)
        b.emit(rng.choice(cards), "make_purchases", (amounts,))
    else:
        b.emit(rng.choice(cards), "pay_balance", (_amount(rng),))


def _emit_linkedlist(b, state, rng, total):
    if rng.random() < 0.55:
        base = rng.choice(state.nodes)
        state.nodes.append(
            b.emit(base, "next_node", kind="remote", iface="node")
        )
    else:
        b.emit(rng.choice(state.nodes), "get_value")


def _emit_fileserver(b, state, rng, total):
    roll = rng.random()
    if roll < 0.22:
        known = rng.random() < 0.7
        name = rng.choice(FS_KNOWN if known else FS_UNKNOWN)
        state.files.append(
            b.emit(state.root, "get_file", (name,), kind="remote",
                   iface="file")
        )
    elif roll < 0.30 and b.seq + 2 <= total:
        cursor = b.emit(state.root, "list_files", kind="cursor", iface="file")
        for method in rng.sample(
            _FS_SUB_METHODS, rng.randint(1, min(3, total - b.seq))
        ):
            b.emit(cursor, method, cursor=cursor)
    elif state.files:
        target = rng.choice(state.files)
        method = rng.choice(
            ("get_name", "length", "read_contents", "last_modified",
             "is_directory", "delete")
        )
        b.emit(target, method)
    else:
        b.emit(state.root,
               rng.choice(("get_name", "last_modified", "length")))


def _emit_noop(b, state, rng, total):
    b.emit(state.root, "noop")


_EMITTERS = {
    "bank": _emit_bank,
    "linkedlist": _emit_linkedlist,
    "fileserver": _emit_fileserver,
    "noop": _emit_noop,
}


def validate_cluster_program(program: Program) -> dict:
    """Check the cross-chain oracle invariant; returns the chain map.

    Every argument register consumed across chains must (a) come from
    an earlier segment than the consuming step and (b) belong to a
    chain that records **no step at all** in the consuming step's
    segment — not before the consumer (its effects would precede the
    read on both paths anyway, but its flush could break), and not
    after it either, because shard sub-batches of one segment execute
    in unspecified relative order: a later producer mutation may run
    before the consumer's nested read on the cluster while the
    sequential oracle always runs it after.
    """
    chains = program.chain_of()
    by_segment = {}
    for step in program.steps:
        by_segment.setdefault(step.segment, []).append(step)
    for steps in by_segment.values():
        stepped = {chains[step.target] for step in steps}
        for step in steps:
            target_chain = chains[step.target]
            for reg in step.arg_regs():
                if reg.seq <= 0 or chains[reg.seq] == target_chain:
                    continue
                producer = program.step(reg.seq)
                if producer.segment >= step.segment:
                    raise ValueError(
                        f"cross-chain argument r{reg.seq} must come from "
                        f"an earlier segment: {step.describe()}"
                    )
                if chains[reg.seq] in stepped:
                    raise ValueError(
                        f"cross-chain producer chain of r{reg.seq} also "
                        f"records in this segment: {step.describe()}"
                    )
    return chains


# -- the sharded naive-RMI oracle --------------------------------------------


def run_cluster_oracle(program: Program, stubs: dict, policy,
                       request_count=None) -> RunResult:
    """Interpret a multi-root program over plain per-shard RMI.

    *stubs* maps root registers (0, -1, ...) to live stubs.  Identical
    to :func:`repro.fuzz.execute.run_oracle` except that the policy
    BREAK state is per chain — each chain is its own batch.
    """
    from repro.core.policies import ExceptionAction

    result = RunResult(mode="oracle")
    chains = program.chain_of()
    regs = dict(stubs)
    deps = {reg: frozenset() for reg in program.root_regs}
    failures = {}
    dead = set()
    step_segment = {reg: -1 for reg in program.root_regs}
    before = request_count() if request_count else 0

    def decide(exc, method, index):
        action = policy.decide(exc, method, index)
        if action not in (ExceptionAction.BREAK, ExceptionAction.CONTINUE):
            raise FuzzHarnessError(
                f"fuzz policies must only BREAK/CONTINUE, got {action!r}"
            )
        return action

    for steps in _group_segments(program):
        broke = {chain: False for chain in range(program.roots)}
        index = 0
        while index < len(steps):
            step = steps[index]
            chain = chains[step.target]
            if step.kind == "cursor":
                sub_end = index + 1
                while (sub_end < len(steps)
                       and steps[sub_end].cursor == step.seq):
                    sub_end += 1
                subs = steps[index + 1:sub_end]
                broke[chain] = _oracle_cursor(
                    program, step, subs, step.segment, regs, deps,
                    failures, dead, step_segment, broke[chain], decide,
                    result,
                )
                index = sub_end
                continue
            broke[chain] = _oracle_step(
                step, step.segment, regs, deps, failures, dead,
                step_segment, broke[chain], decide, result,
            )
            index += 1

    if request_count:
        result.requests = request_count() - before
    return result


# -- the scatter-gather batch driver -----------------------------------------


def run_cluster_batched(program: Program, cluster: ClusterClient,
                        stubs: dict, policy, *,
                        reuse_plans: bool = False) -> RunResult:
    """Record a multi-root program through a real :class:`ClusterBatch`."""
    result = RunResult(mode="plan" if reuse_plans else "batch")
    batch = cluster.create_batch(policy=policy, reuse_plans=reuse_plans)
    regs = {reg: batch.on(stub) for reg, stub in stubs.items()}
    dead = {}
    futures = {}
    proxies = {}
    cursors = {}
    before = _cluster_requests(cluster)

    segments = _group_segments(program)
    last = len(segments) - 1
    for segment_index, steps in enumerate(segments):
        for step in steps:
            blocked = _record_blocker(step, dead, regs)
            if blocked is not None:
                dead[step.seq] = blocked
                continue
            target = (cursors[step.cursor][0] if step.cursor
                      else regs[step.target])
            try:
                produced = getattr(target, step.method)(
                    *_materialize(step.args, regs)
                )
            except Exception as exc:  # noqa: BLE001 - recording verdicts
                dead[step.seq] = outcome_from_exc(exc)
                continue
            if step.cursor:
                cursors[step.cursor][1][step.seq] = produced
            elif step.kind == "value":
                futures[step.seq] = produced
            elif step.kind == "remote":
                proxies[step.seq] = produced
                regs[step.seq] = produced
            else:
                cursors[step.seq] = (produced, {})
        try:
            if segment_index == last:
                batch.flush()
            else:
                batch.flush_and_continue()
        except Exception as exc:  # noqa: BLE001 - a flush must never blow up
            result.flush_error = exc_key(exc)
            break

    _collect_batch_outcomes(program, dead, futures, proxies, cursors, result)
    result.requests = _cluster_requests(cluster) - before
    return result


def _cluster_requests(cluster: ClusterClient) -> int:
    return sum(cluster.client_for(index).stats.requests
               for index in range(cluster.shards))


# -- worlds ------------------------------------------------------------------


class ClusterWorld:
    """One transport universe holding a whole cluster of shard servers."""

    def __init__(self, transport: str, shards: int):
        self.transport = transport
        self.shard_map = ShardMap(shards)
        self.servers = []
        if transport == "tcp":
            self.network = TcpNetwork()
            template = "tcp://127.0.0.1:0"
        else:
            self.network = SimNetwork(conditions=preset(transport))
            template = f"sim://{transport}-shard{{index}}:1099"
        for index in range(shards):
            self.servers.append(
                RMIServer(
                    self.network,
                    template.format(index=index),
                    shard=shard_label(index, shards),
                    shard_home=self.shard_map.home_of,
                ).start()
            )
        self.addresses = tuple(server.address for server in self.servers)
        self._names = itertools.count()

    @property
    def shards(self) -> int:
        return len(self.servers)

    def fresh_cluster(self, schedule=None) -> ClusterClient:
        """A clean cluster client (or, given a schedule, a chaos one).

        Scatter-gather flushes stay single-threaded off TCP: the sim
        networks advance one virtual clock that is not thread-safe.
        """
        from repro.fuzz.runner import CHAOS_RETRY

        network = self.network
        retry = None
        if schedule is not None:
            network = FaultyNetwork(self.network, schedule)
            retry = CHAOS_RETRY
        return ClusterClient(
            network, self.addresses, retry=retry,
            concurrent_flush=(self.transport == "tcp"),
        )

    def bind_roots(self, program: Program):
        """Bind fresh app instances for every root; returns (names, readers).

        Root *chain* is homed on shard ``chain % shards``: the binding
        name is mined until the :class:`ShardMap` places it there, so a
        program's chains always spread across the cluster (and the
        registry's own home guard agrees with the placement).
        """
        from repro.fuzz.runner import _build_domain

        run_id = next(self._names)
        names = {}
        readers = {}
        for chain, domain in enumerate(cluster_domains(program)):
            shard = chain % self.shards
            name = self._mine_name(domain, run_id, chain, shard)
            impl, reader = _build_domain(domain)
            self.servers[shard].bind(name, impl)
            names[root_reg(chain)] = name
            readers[root_reg(chain)] = reader
        return names, readers

    def _mine_name(self, domain, run_id, chain, shard) -> str:
        for salt in itertools.count():
            name = f"{domain}-{run_id}-c{chain}-{salt}"
            if self.shard_map.index_of(name) == shard:
                return name

    def post_state(self, program: Program, readers: dict):
        return tuple(readers[reg]() for reg in program.root_regs)

    def close(self) -> None:
        for server in self.servers:
            server.close()
        self.network.close()


# -- corpus orchestration ----------------------------------------------------


def run_cluster_corpus(config, log=None):
    """The differential matrix of :func:`repro.fuzz.runner.run_corpus`,
    with every batch/plan run executed through a sharded cluster."""
    from repro.fuzz.runner import (
        CLEAN_FAULT_ERRORS,
        MODES,
        TRANSPORTS,
        Divergence,
        FuzzReport,
        _chaos_schedule,
    )

    shards = config.shards
    if shards < 2:
        raise FuzzHarnessError(
            f"cluster corpora need at least two shards, got {shards}"
        )
    unknown = sorted(set(config.transports) - set(TRANSPORTS))
    if unknown:
        raise FuzzHarnessError(
            f"unknown transport(s) {', '.join(unknown)}; "
            f"choose from {', '.join(TRANSPORTS)}"
        )
    unknown = sorted(set(config.modes) - set(MODES))
    if unknown:
        raise FuzzHarnessError(
            f"unknown mode(s) {', '.join(unknown)}; "
            f"choose from {', '.join(MODES)}"
        )
    if config.inject:
        raise FuzzHarnessError(
            "--inject-bug targets the single-server recorder; "
            "run it without --shards"
        )
    clean_errors = CLEAN_FAULT_ERRORS | {
        "repro.cluster.errors.ShardFailedError",
    }
    roots = max(2, min(shards + 1, 4))
    report = FuzzReport(config=config)
    coverage = report.coverage
    coverage.update(
        transports=set(), policies=set(), modes=set(), domains=set(),
        plan_inline=0, plan_installs=0, plan_invocations=0,
        plan_cache_hits=0, fault_events=0, clean_failures=0,
        dedup_replays=0, cross_chain_steps=0, shards=shards,
    )
    worlds = {}
    oracle_world = None
    oracle_cluster = None
    try:
        for name in config.transports:
            worlds[name] = ClusterWorld(name, shards)
        oracle_world = ClusterWorld("localhost", shards)
        oracle_cluster = oracle_world.fresh_cluster()
        for index in range(config.programs):
            program = generate_cluster_program(
                config.seed, index, roots=roots, max_steps=config.max_steps
            )
            report.programs += 1
            coverage["domains"].update(cluster_domains(program))
            coverage["cross_chain_steps"] += count_cross_chain(program)
            if log is not None and index % 10 == 0:
                log(f"cluster program #{index} ({program.domain}, "
                    f"{len(program.steps)} steps)")
            for policy_name, policy in policies_for(
                program, config.policies
            ).items():
                coverage["policies"].add(policy_name)
                oracle = _cluster_oracle_run(
                    oracle_world, oracle_cluster, program, policy
                )
                report.runs += 1
                for transport in config.transports:
                    coverage["transports"].add(transport)
                    divergence = _check_cluster_program(
                        worlds[transport], program, policy_name, policy,
                        oracle, config, clean_errors, report, coverage,
                    )
                    if divergence is not None:
                        _shrink_cluster_divergence(
                            divergence, worlds[transport], oracle_world,
                            oracle_cluster, policy, config, clean_errors,
                        )
                        report.divergences.append(divergence)
                        if log is not None:
                            log(divergence.describe())
                        if len(report.divergences) >= config.max_divergences:
                            return report
    finally:
        for world in worlds.values():
            for server in world.servers:
                coverage["plan_cache_hits"] += (
                    server.plan_cache.stats.snapshot().hits
                )
                coverage["dedup_replays"] += server.dedup.hits
        if oracle_cluster is not None:
            oracle_cluster.close()
        if oracle_world is not None:
            oracle_world.close()
        for world in worlds.values():
            world.close()
    return report


def count_cross_chain(program: Program) -> int:
    """How many steps of *program* consume a register across chains."""
    chains = program.chain_of()
    count = 0
    for step in program.steps:
        if any(reg.seq > 0 and chains[reg.seq] != chains[step.target]
               for reg in step.arg_regs()):
            count += 1
    return count


def _cluster_oracle_run(world, cluster, program, policy):
    names, readers = world.bind_roots(program)
    stubs = {reg: cluster.lookup(name) for reg, name in names.items()}
    result = run_cluster_oracle(
        program, stubs, policy,
        request_count=lambda: _cluster_requests(cluster),
    )
    result.post_state = world.post_state(program, readers)
    return result


def _cluster_mode_run(world, cluster, program, policy, reuse_plans):
    names, readers = world.bind_roots(program)
    stubs = {reg: cluster.lookup(name) for reg, name in names.items()}
    result = run_cluster_batched(
        program, cluster, stubs, policy, reuse_plans=reuse_plans
    )
    result.post_state = world.post_state(program, readers)
    return result


def _check_cluster_program(world, program, policy_name, policy, oracle,
                           config, clean_errors, report, coverage):
    """One (program, policy, transport) cell of the cluster matrix.

    The traffic bound is never enforced for multi-shard runs: split
    points and per-chain close flushes legitimately cost extra round
    trips (correctness first — the conformance claim is observational).
    """
    for mode in config.modes:
        coverage["modes"].add(mode)
        schedule = _chaos_schedule_for(config, program, policy_name,
                                       world.transport, mode)
        cluster = world.fresh_cluster(schedule)
        try:
            runs = config.plan_runs if mode == "plan" else 1
            for run_index in range(runs):
                try:
                    result = _cluster_mode_run(
                        world, cluster, program, policy,
                        reuse_plans=(mode == "plan"),
                    )
                except RETRYABLE_ERRORS:
                    if schedule is None:
                        raise
                    coverage["clean_failures"] += 1
                    report.runs += 1
                    continue
                report.runs += 1
                if schedule is not None and result.flush_error in clean_errors:
                    coverage["clean_failures"] += 1
                    continue
                diffs = compare_runs(oracle, result, check_traffic=False)
                if diffs:
                    return Divergence(
                        program=program,
                        transport=world.transport,
                        policy=policy_name,
                        mode=mode,
                        run_index=run_index,
                        diffs=diffs,
                    )
        finally:
            if mode == "plan":
                for index in range(cluster.shards):
                    memo = cluster.client_for(index).plan_memo
                    coverage["plan_inline"] += memo.inline_flushes
                    coverage["plan_installs"] += memo.plan_installs
                    coverage["plan_invocations"] += memo.plan_invocations
            if schedule is not None:
                coverage["fault_events"] += schedule.injected
            cluster.close()
    return None


def _chaos_schedule_for(config, program, policy_name, transport, mode):
    from repro.fuzz.runner import _chaos_schedule

    return _chaos_schedule(config, program.index, policy_name, transport,
                           mode)


def _shrink_cluster_divergence(divergence, world, oracle_world,
                               oracle_cluster, policy, config, clean_errors):
    """Shrink a cluster divergence, skipping invariant-breaking candidates.

    ``merged_segments`` (and some step drops) can pull a cross-chain
    argument into its producer's segment, where the per-chain oracle is
    unsound — those candidates are reported as non-diverging so the
    shrinker keeps the last sound repro instead.
    """
    if not config.shrink:
        return
    mode = divergence.mode
    runs = config.plan_runs if mode == "plan" else 1
    seen = {}

    def diverges(candidate):
        key = candidate.describe()
        if key in seen:
            return seen[key]
        try:
            validate_cluster_program(candidate)
        except ValueError:
            seen[key] = []
            return []
        oracle = _cluster_oracle_run(
            oracle_world, oracle_cluster, candidate, policy
        )
        schedule = _chaos_schedule_for(
            config, divergence.program, divergence.policy, world.transport,
            mode,
        )
        cluster = world.fresh_cluster(schedule)
        diffs = []
        try:
            for _ in range(runs):
                try:
                    result = _cluster_mode_run(
                        world, cluster, candidate, policy,
                        reuse_plans=(mode == "plan"),
                    )
                except RETRYABLE_ERRORS:
                    if schedule is None:
                        raise
                    continue
                if schedule is not None and result.flush_error in clean_errors:
                    continue
                diffs = compare_runs(oracle, result, check_traffic=False)
                if diffs:
                    break
        finally:
            cluster.close()
        seen[key] = diffs
        return diffs

    shrunk, attempts = shrink_program(divergence.program, diverges)
    divergence.shrunk = shrunk
    divergence.shrink_attempts = attempts
    divergence.shrunk_diffs = diverges(shrunk) or list(divergence.diffs)
