"""Greedy program shrinking: the smallest repro that still diverges.

Given a diverging program and a ``diverges(candidate)`` predicate that
re-runs the oracle comparison, the shrinker repeatedly tries cheaper
candidates and keeps any that still diverge:

1. merge all segments into one unchained batch;
2. drop one step (plus its dependency closure) at a time;
3. simplify literal arguments (shorter lists, unit amounts).

Every candidate is a *valid* program by construction —
``Program.without_steps`` removes dependents transitively — so the
predicate never sees a malformed script.  The loop restarts after every
successful reduction and stops at a fixpoint or when the attempt budget
runs out; fuzzing is only as useful as its repros are small.
"""

from __future__ import annotations

from dataclasses import replace

from repro.fuzz.program import Program, validate_program

#: Upper bound on predicate evaluations for one shrink.
DEFAULT_BUDGET = 300


def shrink_program(program: Program, diverges, budget: int = DEFAULT_BUDGET):
    """Return ``(smallest_program, attempts_used)``.

    *diverges* is any callable returning a truthy value while the
    candidate still reproduces the original divergence.
    """
    current = program
    attempts = 0

    def try_candidate(candidate):
        nonlocal attempts, current
        if attempts >= budget or not candidate.steps:
            return False
        validate_program(candidate)
        attempts += 1
        if diverges(candidate):
            current = candidate
            return True
        return False

    progressed = True
    while progressed and attempts < budget:
        progressed = False
        if current.segments > 1 and try_candidate(current.merged_segments()):
            progressed = True
            continue
        for step in list(current.steps):
            if try_candidate(current.without_steps({step.seq})):
                progressed = True
                break
        if progressed:
            continue
        for candidate in _argument_simplifications(current):
            if try_candidate(candidate):
                progressed = True
                break
    return current, attempts


def _argument_simplifications(program: Program):
    """One-change-at-a-time literal simplifications."""
    for position, step in enumerate(program.steps):
        simplified = tuple(_simplify(arg) for arg in step.args)
        if simplified != step.args:
            steps = list(program.steps)
            steps[position] = replace(step, args=simplified)
            yield replace(program, steps=tuple(steps))


def _simplify(value):
    if isinstance(value, float) and value != 1.0:
        return 1.0
    if isinstance(value, (list, tuple)) and len(value) > 1:
        head = value[:1]
        return list(head) if isinstance(value, list) else tuple(head)
    return value
