"""Executing one fuzz program three ways, and comparing the outcomes.

The *oracle* (:func:`run_oracle`) interprets a program as the paper's
baseline: one plain RMI round trip per executed call.  Because the
equivalence claim covers exception policies, the oracle is also a
reference interpreter of the batch semantics of §3.3–§3.5 — it decides,
from the policy and the failure history, which calls a batch would have
executed at all, and what every future/proxy/cursor would observably
report.  The rules mirror the client recorder and server executor
exactly:

- a step whose target/argument register failed in an *earlier* segment
  never records (the proxy raises its stored verdict at record time, in
  target-then-arguments order);
- a recorded step whose same-segment dependency failed reports the
  first failed dependency in sequence order (``_verdict_for``);
- after a BREAK, the rest of the segment is aborted
  (:class:`~repro.core.errors.BatchAbortedError`);
- cursor sub-batches run element-major, stop at a BREAK, and pad the
  remaining element slots as aborted.

REPEAT/RESTART policies are out of scope by design: re-running side
effects is exactly what a sequence of individual calls cannot replay,
so the generator never produces them and the oracle refuses them.

The *batch driver* (:func:`run_batched`) records the same program
through real proxies — plain (``reuse_plans=False``) or plan-reusing —
flushes segment by segment, and reads every observable back.  Both
produce the same :class:`RunResult` shape, which
:func:`compare_runs` diffs field by field: per-step status/value/
exception, cursor geometry and per-element matrices, server post-state,
and the traffic sanity bound (a batch never uses more round trips than
naive RMI, modulo the empty close-session flush).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cursor import cursor_length
from repro.core.errors import BatchAbortedError
from repro.core.policies import ExceptionAction
from repro.core.proxy import create_batch
from repro.rmi.exceptions import RemoteApplicationError

from repro.fuzz.program import ROOT_REG, Program, Reg


class FuzzHarnessError(Exception):
    """The harness itself (not the system under test) went wrong."""


# -- observable outcomes -----------------------------------------------------


@dataclass(frozen=True)
class StepOutcome:
    """What one step observably did: a value, an exception, or an abort."""

    status: str  # "ok" | "raise" | "aborted"
    value: object = None
    error: str = ""

    def render(self) -> str:
        if self.status == "ok":
            return f"ok({self.value!r})" if self.value is not None else "ok"
        if self.status == "raise":
            return f"raise({self.error})"
        return "aborted"


@dataclass
class CursorOutcome:
    """A cursor step's observable: its own fate, geometry, and matrix."""

    outcome: StepOutcome
    length: int = -1
    elements: dict = field(default_factory=dict)  # sub seq -> [StepOutcome]


@dataclass
class RunResult:
    """Everything observable about one execution of one program."""

    mode: str
    outcomes: dict = field(default_factory=dict)  # seq -> StepOutcome
    cursors: dict = field(default_factory=dict)  # seq -> CursorOutcome
    post_state: object = None
    requests: int = 0
    flush_error: str = ""


def exc_key(exc: BaseException) -> str:
    """Stable wire-level identity of an exception for comparison.

    Unregistered server exceptions decode as
    :class:`~repro.rmi.exceptions.RemoteApplicationError` on *both*
    paths; keeping the carried original class name in the key means two
    different unregistered exceptions still compare unequal.
    """
    cls = type(exc)
    key = f"{cls.__module__}.{cls.__qualname__}"
    if isinstance(exc, RemoteApplicationError):
        key += f"[{exc.original_class}]"
    return key


def outcome_from_exc(exc: BaseException) -> StepOutcome:
    if isinstance(exc, BatchAbortedError):
        return StepOutcome("aborted")
    return StepOutcome("raise", error=exc_key(exc))


_OK = StepOutcome("ok")


def _ok_value(value) -> StepOutcome:
    return StepOutcome("ok", value=value)


# -- the naive-RMI oracle ----------------------------------------------------


def run_oracle(program: Program, stub, policy) -> RunResult:
    """Execute *program* call-by-call over plain RMI.

    Each executed call is one real round trip against the live server;
    the batch semantics (what would not have executed, and what its
    observable verdict would be) are interpreted client-side.
    """
    result = RunResult(mode="oracle")
    regs = {ROOT_REG: stub}
    deps = {ROOT_REG: frozenset()}
    failures = {}  # seq -> exception instance (executed steps only)
    dead = set()  # outcome decided at record time (never recorded)
    step_segment = {ROOT_REG: -1}
    stats = stub.owner_client.stats
    before = stats.requests

    def decide(exc, method, index):
        action = policy.decide(exc, method, index)
        if action not in (ExceptionAction.BREAK, ExceptionAction.CONTINUE):
            raise FuzzHarnessError(
                f"fuzz policies must only BREAK/CONTINUE, got {action!r}"
            )
        return action

    segments = _group_segments(program)
    for segment_index, steps in enumerate(segments):
        broke = False
        index = 0
        while index < len(steps):
            step = steps[index]
            if step.kind == "cursor":
                sub_end = index + 1
                while (
                    sub_end < len(steps)
                    and steps[sub_end].cursor == step.seq
                ):
                    sub_end += 1
                subs = steps[index + 1 : sub_end]
                broke = _oracle_cursor(
                    program, step, subs, segment_index, regs, deps,
                    failures, dead, step_segment, broke, decide, result,
                )
                index = sub_end
                continue
            broke = _oracle_step(
                step, segment_index, regs, deps, failures, dead,
                step_segment, broke, decide, result,
            )
            index += 1

    result.requests = stats.requests - before
    return result


def _oracle_step(step, segment_index, regs, deps, failures, dead,
                 step_segment, broke, decide, result):
    outcome, step_deps = _pre_execution(
        step, segment_index, deps, failures, dead, step_segment, broke,
        result,
    )
    step_segment[step.seq] = segment_index
    if outcome is not None:
        result.outcomes[step.seq] = outcome
        return broke
    deps[step.seq] = step_deps
    target = regs[step.target]
    args = _materialize(step.args, regs)
    try:
        value = getattr(target, step.method)(*args)
    except Exception as exc:  # noqa: BLE001 - the policy sees everything
        failures[step.seq] = exc
        result.outcomes[step.seq] = outcome_from_exc(exc)
        return broke or decide(exc, step.method, step.seq) == (
            ExceptionAction.BREAK
        )
    if step.kind == "remote":
        regs[step.seq] = value
        result.outcomes[step.seq] = _OK
    else:
        result.outcomes[step.seq] = _ok_value(value)
    return broke


def _oracle_cursor(program, step, subs, segment_index, regs, deps, failures,
                   dead, step_segment, broke, decide, result):
    outcome, step_deps = _pre_execution(
        step, segment_index, deps, failures, dead, step_segment, broke,
        result,
    )
    step_segment[step.seq] = segment_index
    for sub in subs:
        step_segment[sub.seq] = segment_index
    if outcome is not None:
        result.cursors[step.seq] = CursorOutcome(outcome)
        return broke
    deps[step.seq] = step_deps
    target = regs[step.target]
    try:
        items = list(getattr(target, step.method)(*_materialize(step.args, regs)))
    except Exception as exc:  # noqa: BLE001
        failures[step.seq] = exc
        result.cursors[step.seq] = CursorOutcome(outcome_from_exc(exc))
        return broke or decide(exc, step.method, step.seq) == (
            ExceptionAction.BREAK
        )

    cursor = CursorOutcome(_OK, length=len(items))
    cursor.elements = {sub.seq: [] for sub in subs}
    result.cursors[step.seq] = cursor
    for index in range(len(items)):
        for sub in subs:
            if broke:
                break
            try:
                value = getattr(items[index], sub.method)(
                    *_materialize(sub.args, regs)
                )
            except Exception as exc:  # noqa: BLE001
                cursor.elements[sub.seq].append(outcome_from_exc(exc))
                if decide(exc, sub.method, index) == ExceptionAction.BREAK:
                    broke = True
            else:
                cursor.elements[sub.seq].append(_ok_value(value))
        if broke:
            break
    # Elements the batch never reached surface as aborted on iteration.
    for sub in subs:
        slots = cursor.elements[sub.seq]
        while len(slots) < len(items):
            slots.append(StepOutcome("aborted"))
    return broke


def _pre_execution(step, segment_index, deps, failures, dead, step_segment,
                   broke, result):
    """The recorder/executor checks that run before a call executes.

    Returns ``(outcome, None)`` when the step never executes, or
    ``(None, deps)`` when it should be attempted for real.
    """
    # Record-time check: registers resolved before this segment (or dead)
    # raise their stored verdict, target first, then arguments in
    # conversion order.
    for reg in (step.target,) + tuple(r.seq for r in step.arg_regs()):
        if reg <= ROOT_REG:
            continue  # root registers (0, -1, ...) never fail
        resolved = reg in dead or step_segment.get(reg, 10**9) < segment_index
        if not resolved:
            continue
        verdict = _register_verdict(reg, result)
        if verdict.status != "ok":
            dead.add(step.seq)
            return StepOutcome(verdict.status, error=verdict.error), None

    # Flush-time verdict: first failed dependency in sequence order.
    step_deps = set(deps.get(step.target, frozenset()))
    if step.target > ROOT_REG:
        step_deps.add(step.target)
    for reg in step.arg_regs():
        step_deps.update(deps.get(reg.seq, frozenset()))
        if reg.seq > ROOT_REG:
            step_deps.add(reg.seq)
    for dep in sorted(step_deps):
        if dep in failures:
            return outcome_from_exc(failures[dep]), None
    if broke:
        return StepOutcome("aborted"), None
    return None, frozenset(step_deps)


def _register_verdict(seq, result: RunResult) -> StepOutcome:
    if seq in result.outcomes:
        return result.outcomes[seq]
    if seq in result.cursors:
        return result.cursors[seq].outcome
    raise FuzzHarnessError(f"register r{seq} has no recorded verdict")


def _materialize(value, regs):
    if isinstance(value, Reg):
        return regs[value.seq]
    if isinstance(value, list):
        return [_materialize(item, regs) for item in value]
    if isinstance(value, tuple):
        return tuple(_materialize(item, regs) for item in value)
    if isinstance(value, dict):
        return {key: _materialize(item, regs) for key, item in value.items()}
    if isinstance(value, (set, frozenset)):
        resolved = {_materialize(item, regs) for item in value}
        return frozenset(resolved) if isinstance(value, frozenset) else resolved
    return value


def _group_segments(program: Program):
    segments = [[] for _ in range(program.segments)]
    for step in program.steps:
        segments[step.segment].append(step)
    return segments


# -- the batch/plan driver ---------------------------------------------------


def run_batched(program: Program, stub, policy, *, reuse_plans: bool = False,
                inject=None) -> RunResult:
    """Record *program* through real batch proxies and read it back.

    *inject* is an optional ``callable(recorder)`` applied before any
    recording — the hook the CLI's ``--inject-bug`` uses to plant a
    deliberate wire-level defect that the differential check must catch.
    """
    result = RunResult(mode="plan" if reuse_plans else "batch")
    batch = create_batch(stub, policy=policy, reuse_plans=reuse_plans)
    if inject is not None:
        inject(batch._recorder)
    regs = {ROOT_REG: batch}
    dead = {}  # seq -> StepOutcome decided at record time
    futures = {}
    proxies = {}
    cursors = {}  # seq -> (CursorProxy, {sub seq -> future})
    stats = stub.owner_client.stats
    before = stats.requests

    segments = _group_segments(program)
    last = len(segments) - 1
    for segment_index, steps in enumerate(segments):
        for step in steps:
            blocked = _record_blocker(step, dead, regs)
            if blocked is not None:
                dead[step.seq] = blocked
                continue
            target = cursors[step.cursor][0] if step.cursor else regs[step.target]
            try:
                produced = getattr(target, step.method)(
                    *_materialize(step.args, regs)
                )
            except Exception as exc:  # noqa: BLE001 - recording verdicts
                dead[step.seq] = outcome_from_exc(exc)
                continue
            if step.cursor:
                cursors[step.cursor][1][step.seq] = produced
            elif step.kind == "value":
                futures[step.seq] = produced
            elif step.kind == "remote":
                proxies[step.seq] = produced
                regs[step.seq] = produced
            else:
                cursors[step.seq] = (produced, {})
        try:
            if segment_index == last:
                batch.flush()
            else:
                batch.flush_and_continue()
        except Exception as exc:  # noqa: BLE001 - a flush must never blow up
            result.flush_error = exc_key(exc)
            break

    _collect_batch_outcomes(program, dead, futures, proxies, cursors, result)
    result.requests = stats.requests - before
    return result


def _record_blocker(step, dead, regs):
    """Mirror of the recorder's pre-checks for steps we cannot record.

    Scans target-then-arguments, exactly like ``record`` does: a dead
    register propagates its stored outcome, and a live register whose
    proxy already failed propagates that verdict (the real ``record``
    call would raise it, but a dead register elsewhere in the argument
    list could stop us from even attempting the call, so the order is
    simulated here for all registers uniformly).
    """
    order = (step.cursor if step.cursor else step.target,) + tuple(
        r.seq for r in step.arg_regs()
    )
    for reg in order:
        if reg in dead:
            blocked = dead[reg]
            return StepOutcome(blocked.status, error=blocked.error)
        proxy = regs.get(reg)
        failure = getattr(proxy, "_failure", None)
        if failure is not None:
            return outcome_from_exc(failure)
    return None


def _collect_batch_outcomes(program, dead, futures, proxies, cursors, result):
    for step in program.steps:
        if step.cursor:
            continue  # observed through its cursor's element matrix
        if step.kind == "cursor":
            result.cursors[step.seq] = _collect_cursor(
                step, program, dead, cursors
            )
            continue
        if step.seq in dead:
            result.outcomes[step.seq] = dead[step.seq]
        elif step.kind == "value":
            future = futures.get(step.seq)
            if future is None:
                result.outcomes[step.seq] = StepOutcome(
                    "raise", error="fuzz.missing-future"
                )
                continue
            try:
                result.outcomes[step.seq] = _ok_value(future.get())
            except Exception as exc:  # noqa: BLE001
                result.outcomes[step.seq] = outcome_from_exc(exc)
        else:
            proxy = proxies.get(step.seq)
            if proxy is None:
                result.outcomes[step.seq] = StepOutcome(
                    "raise", error="fuzz.missing-proxy"
                )
                continue
            try:
                proxy.ok()
                result.outcomes[step.seq] = _OK
            except Exception as exc:  # noqa: BLE001
                result.outcomes[step.seq] = outcome_from_exc(exc)


def _collect_cursor(step, program, dead, cursors):
    if step.seq in dead:
        return CursorOutcome(dead[step.seq])
    proxy, sub_futures = cursors[step.seq]
    try:
        proxy.ok()
    except Exception as exc:  # noqa: BLE001
        return CursorOutcome(outcome_from_exc(exc))
    outcome = CursorOutcome(_OK, length=cursor_length(proxy))
    outcome.elements = {seq: [] for seq in sub_futures}
    while proxy.next():
        for seq, future in sub_futures.items():
            try:
                outcome.elements[seq].append(_ok_value(future.get()))
            except Exception as exc:  # noqa: BLE001
                outcome.elements[seq].append(outcome_from_exc(exc))
    return outcome


def drop_call_injection(recorder) -> None:
    """Plant the acceptance-criteria bug: silently drop one batched call.

    Wraps the recorder's ``_ship`` so every shipped segment of two or
    more invocations loses its second one — the kind of off-by-one a
    broken wire path could introduce.  The differential harness must
    catch it and shrink the repro.
    """
    original = recorder._ship

    def shipping(invocations, keep_session):
        if len(invocations) >= 2:
            invocations = invocations[:1] + invocations[2:]
        return original(invocations, keep_session)

    recorder._ship = shipping


def swap_policy_injection(recorder) -> None:
    """A subtler planted bug: ship every batch under ContinuePolicy.

    Structurally the batch is untouched — same calls, same wire shape —
    but a batch recorded under ABORT semantics keeps executing past its
    first failure.  Only the differential check against the oracle's
    policy interpretation (extra side effects in the post-state, futures
    resolving instead of aborting) can notice.
    """
    from repro.core.policies import ContinuePolicy

    recorder._policy = ContinuePolicy()


# -- comparison --------------------------------------------------------------

#: Extra round trips a batch may legitimately spend beyond naive RMI:
#: one empty flush to close a chained session, plus (plan mode only) one
#: re-install after a plan-cache miss.
TRAFFIC_SLACK = {"batch": 1, "plan": 2}


def compare_runs(oracle: RunResult, observed: RunResult,
                 check_traffic: bool = True):
    """All observable differences between an oracle and a mode run."""
    diffs = []
    if observed.flush_error:
        diffs.append(f"flush raised {observed.flush_error}")
    for seq in sorted(set(oracle.outcomes) | set(observed.outcomes)):
        expected = oracle.outcomes.get(seq)
        got = observed.outcomes.get(seq)
        if expected != got:
            diffs.append(
                f"step r{seq}: oracle {_render(expected)} != "
                f"{observed.mode} {_render(got)}"
            )
    for seq in sorted(set(oracle.cursors) | set(observed.cursors)):
        diffs.extend(_compare_cursor(
            seq, oracle.cursors.get(seq), observed.cursors.get(seq),
            observed.mode,
        ))
    if oracle.post_state != observed.post_state:
        diffs.append(
            f"post-state: oracle {oracle.post_state!r} != "
            f"{observed.mode} {observed.post_state!r}"
        )
    slack = TRAFFIC_SLACK.get(observed.mode, 0)
    if check_traffic and observed.requests > oracle.requests + slack:
        diffs.append(
            f"traffic: {observed.mode} used {observed.requests} requests, "
            f"naive RMI used {oracle.requests}"
        )
    return diffs


def _compare_cursor(seq, expected, got, mode):
    if expected is None or got is None:
        return [f"cursor r{seq}: present only in one run"]
    diffs = []
    if expected.outcome != got.outcome:
        diffs.append(
            f"cursor r{seq}: oracle {expected.outcome.render()} != "
            f"{mode} {got.outcome.render()}"
        )
        return diffs
    if expected.outcome.status != "ok":
        return diffs
    if expected.length != got.length:
        diffs.append(
            f"cursor r{seq} length: oracle {expected.length} != "
            f"{mode} {got.length}"
        )
    for sub_seq in sorted(set(expected.elements) | set(got.elements)):
        left = expected.elements.get(sub_seq, [])
        right = got.elements.get(sub_seq, [])
        if left != right:
            diffs.append(
                f"cursor r{seq} sub r{sub_seq}: oracle "
                f"[{', '.join(o.render() for o in left)}] != {mode} "
                f"[{', '.join(o.render() for o in right)}]"
            )
    return diffs


def _render(outcome):
    return outcome.render() if outcome is not None else "<missing>"
