"""Differential conformance fuzzing for the batching middleware.

The paper's central claim — an explicit batch is semantically
equivalent to the same sequence of individual RMI calls — becomes an
executable property here: randomized, well-typed batch programs are run
through naive RMI (the oracle), one-shot batches, and plan-reusing
batches across simulated and real transports under every exception
policy, and every observable (results, exception types and positions,
cursor geometry, server post-state, round-trip counts) is compared.

Public surface:

- :func:`generate_program` / :func:`generate_corpus` — seeded programs
- :func:`run_corpus` + :class:`FuzzConfig` — the differential matrix
- :func:`run_oracle` / :func:`run_batched` / :func:`compare_runs` —
  single-program building blocks
- :func:`shrink_program` — minimal-repro reduction
- ``python -m repro.fuzz`` — the CLI (seeded replay, bug injection)
"""

from repro.fuzz.execute import (
    CursorOutcome,
    FuzzHarnessError,
    RunResult,
    StepOutcome,
    compare_runs,
    drop_call_injection,
    exc_key,
    run_batched,
    run_oracle,
)
from repro.fuzz.generate import generate_corpus, generate_program, policies_for
from repro.fuzz.program import Program, Reg, Step, validate_program
from repro.fuzz.runner import (
    Divergence,
    FuzzConfig,
    FuzzReport,
    World,
    run_corpus,
)
from repro.fuzz.shrink import shrink_program

__all__ = [
    "CursorOutcome",
    "Divergence",
    "FuzzConfig",
    "FuzzHarnessError",
    "FuzzReport",
    "Program",
    "Reg",
    "RunResult",
    "Step",
    "StepOutcome",
    "World",
    "compare_runs",
    "drop_call_injection",
    "exc_key",
    "generate_corpus",
    "generate_program",
    "policies_for",
    "run_batched",
    "run_corpus",
    "run_oracle",
    "shrink_program",
    "validate_program",
]
