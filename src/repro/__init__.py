"""repro — Explicit Batching for Distributed Objects (BRMI), in Python.

A from-scratch reproduction of Tilevich & Cook, *Explicit Batching for
Distributed Objects* (2009): an RMI-like distributed-object middleware
plus the BRMI layer — explicit batches, futures, array cursors, exception
policies, and chained batches.

Quickstart::

    from repro import (SimNetwork, LAN, RMIServer, RMIClient, create_batch)

    net = SimNetwork(conditions=LAN)
    server = RMIServer(net, "sim://server:1099").start()
    server.bind("root", DirectoryImpl())

    client = RMIClient(net, "sim://server:1099")
    root = create_batch(client.lookup("root"))
    index = root.get_file("index.html")
    name = index.get_name()
    size = index.get_size()
    root.flush()                       # one round trip for all three calls
    print(name.get(), size.get())

Hot batches can go further with compiled plans: pass
``reuse_plans=True`` and a repeated batch shape is shipped once, cached
server-side under its content hash, and re-invoked afterwards with just
``(hash, argument values)`` — a fraction of the wire bytes per flush::

    for name in many_names:
        root = create_batch(client.lookup("root"), reuse_plans=True)
        size = root.get_file(name).get_size()
        root.flush()                   # inline once, then plan invocations
        print(name, size.get())

See DESIGN.md for the system inventory (including the plan layer) and
EXPERIMENTS.md for the paper-figure reproductions.
"""

from repro.aio import AioNetwork, AioRMIClient, ServerMetrics
from repro.core import (
    AbortPolicy,
    BatchAbortedError,
    BatchError,
    BatchProxy,
    BRMI,
    ContinuePolicy,
    CursorProxy,
    CustomPolicy,
    ExceptionAction,
    Future,
    FutureNotReadyError,
    create_batch,
    default_policy,
    derive_batch_interfaces,
    generate_batch_interface_source,
)
from repro.net import (
    LAN,
    LOCALHOST,
    WIRELESS,
    FaultInjector,
    FaultSchedule,
    FaultyNetwork,
    HostCosts,
    NetworkConditions,
    SimClock,
    SimNetwork,
    Stopwatch,
    TcpNetwork,
)
from repro.plan import (
    BatchPlan,
    compile_plan,
    PlanCache,
    PlanError,
    PlanInvalidatedError,
    PlanNotFoundError,
    PlanningBatchProxy,
    plan_hash,
)
from repro.rmi import (
    CommunicationError,
    RemoteError,
    RetryPolicy,
    RemoteInterface,
    RemoteObject,
    RMIClient,
    RMICore,
    RMIServer,
    ServerBusyError,
    Stub,
)
from repro.wire import ParamSlot, RemoteRef, register_exception, serializable

__version__ = "1.0.0"

__all__ = [
    "AbortPolicy",
    "AioNetwork",
    "AioRMIClient",
    "BatchAbortedError",
    "BatchError",
    "BatchPlan",
    "BatchProxy",
    "BRMI",
    "compile_plan",
    "CommunicationError",
    "ContinuePolicy",
    "create_batch",
    "CursorProxy",
    "CustomPolicy",
    "default_policy",
    "derive_batch_interfaces",
    "ExceptionAction",
    "FaultInjector",
    "FaultSchedule",
    "FaultyNetwork",
    "Future",
    "FutureNotReadyError",
    "generate_batch_interface_source",
    "HostCosts",
    "LAN",
    "LOCALHOST",
    "NetworkConditions",
    "ParamSlot",
    "plan_hash",
    "PlanCache",
    "PlanError",
    "PlanInvalidatedError",
    "PlanningBatchProxy",
    "PlanNotFoundError",
    "register_exception",
    "RemoteError",
    "RemoteInterface",
    "RemoteObject",
    "RemoteRef",
    "RetryPolicy",
    "RMIClient",
    "RMICore",
    "RMIServer",
    "serializable",
    "ServerBusyError",
    "ServerMetrics",
    "SimClock",
    "SimNetwork",
    "Stopwatch",
    "Stub",
    "TcpNetwork",
    "WIRELESS",
]
