"""Comparison baselines beyond plain RMI."""

from repro.baselines.naive import (
    NaiveBatch,
    NaiveFuture,
    list_directory_naive,
    naive_wrap,
    run_noop_naive,
    traverse_naive,
)

__all__ = [
    "list_directory_naive",
    "NaiveBatch",
    "NaiveFuture",
    "naive_wrap",
    "run_noop_naive",
    "traverse_naive",
]
