"""Naive call aggregation: an implicit-batching-style baseline.

The paper's comparison to implicit batching (§1, §6) is qualitative —
no public Java implementation existed.  This module supplies a concrete
stand-in so the comparison can be *measured*: a batching layer with the
key weakness the paper attributes to implicit systems, namely that
"retrieving multiple data fields, exception handling, and iterators all
pose problems".  Concretely:

- consecutive *value-returning* calls on one object aggregate into a
  batch, exactly like BRMI;
- any call returning a **remote object** (or an array of them) forces a
  flush and executes eagerly over plain RMI, because the aggregator has
  no way to chain calls through an unmaterialized result — each hop of a
  linked-list traversal becomes a separate round trip plus a marshalled
  stub, like Figure 7's RMI curve;
- reading any future also forces a flush (the implicit trigger).

The baseline rides the same ``__invoke_batch__`` wire path as BRMI, so
timing differences measure the *model* (what can be aggregated), not the
implementation.
"""

from __future__ import annotations

from repro.core.future import Future
from repro.core.policies import default_policy
from repro.core.proxy import create_batch
from repro.rmi.stub import Stub


class NaiveBatch:
    """Aggregating proxy with implicit-batching-style limitations."""

    def __init__(self, stub: Stub):
        if not isinstance(stub, Stub):
            raise TypeError(
                f"NaiveBatch wraps an RMI stub, got {type(stub).__name__}"
            )
        self._stub = stub
        self._pending = []  # (method_name, args, kwargs, NaiveFuture)

    # -- recording ---------------------------------------------------------

    def __getattr__(self, name):
        if name.startswith("_"):
            raise AttributeError(name)
        spec = self._stub.method_spec(name)
        return _NaiveMethod(self, spec)

    def _record_value_call(self, spec, args, kwargs):
        future = NaiveFuture(self)
        self._pending.append((spec.name, args, kwargs, future))
        return future

    def _eager_call(self, spec, args, kwargs):
        """Remote-returning call: flush, then plain RMI."""
        self.flush()
        result = getattr(self._stub, spec.name)(*args, **kwargs)
        if spec.returns_kind == "remote":
            return NaiveBatch(result)
        return [NaiveBatch(item) for item in result]

    # -- flushing ----------------------------------------------------------

    def flush(self) -> None:
        """Ship all pending value calls in one real batch."""
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        batch = create_batch(self._stub, policy=default_policy())
        inner_futures = []
        for method_name, args, kwargs, _future in pending:
            inner_futures.append(getattr(batch, method_name)(*args, **kwargs))
        batch.flush()
        for (_name, _args, _kwargs, future), inner in zip(
            pending, inner_futures
        ):
            future._resolve(inner)

    def pending_calls(self) -> int:
        """How many calls are aggregated but not yet sent."""
        return len(self._pending)


class _NaiveMethod:
    """One method bound to a naive batch: queue or materialize."""

    __slots__ = ("_owner", "_spec")

    def __init__(self, owner: NaiveBatch, spec):
        self._owner = owner
        self._spec = spec

    def __call__(self, *args, **kwargs):
        if self._spec.returns_kind == "value":
            return self._owner._record_value_call(self._spec, args, kwargs)
        return self._owner._eager_call(self._spec, args, kwargs)

    def __repr__(self):
        return f"<naive method {self._spec.name}>"


class NaiveFuture:
    """A future whose first read implicitly flushes its batch."""

    __slots__ = ("_owner", "_inner")

    def __init__(self, owner: NaiveBatch):
        self._owner = owner
        self._inner = None

    def get(self):
        """Read the value, triggering the implicit flush if needed."""
        if self._inner is None:
            self._owner.flush()
        return self._inner.get()

    def is_done(self) -> bool:
        return self._inner is not None

    def _resolve(self, inner: Future) -> None:
        self._inner = inner


def naive_wrap(stub: Stub) -> NaiveBatch:
    """Entry point mirroring :func:`repro.core.create_batch`."""
    return NaiveBatch(stub)


# -- baseline workloads matching the paper's micro-benchmarks -------------


def run_noop_naive(stub, calls: int) -> int:
    """No-op workload: fully aggregatable, so naive ≈ BRMI here."""
    batch = naive_wrap(stub)
    futures = [batch.noop() for _ in range(calls)]
    batch.flush()
    for future in futures:
        future.get()
    return calls


def traverse_naive(stub, hops: int) -> int:
    """Linked-list traversal: every hop materializes, so naive ≈ RMI."""
    node = naive_wrap(stub)
    for _ in range(hops):
        node = node.next_node()
    value = node.get_value()
    node.flush()
    return value.get()


def list_directory_naive(stub):
    """Directory listing: the array return forces per-file round trips
    for navigation, though each file's four metadata reads aggregate."""
    listing = []
    for entry in naive_wrap(stub).list_files():
        name = entry.get_name()
        is_dir = entry.is_directory()
        mtime = entry.last_modified()
        size = entry.length()
        entry.flush()
        listing.append((name.get(), is_dir.get(), mtime.get(), size.get()))
    return listing
