"""CLI for trace files and metrics dumps: ``python -m repro.obs``.

Subcommands:

- ``render FILE``  — span tree per trace (``--chart`` adds the Figure-1
  message chart built from ``client.send`` spans);
- ``check FILE``   — well-formedness gate for CI (exit 1 on problems);
- ``metrics FILE [FILE ...]`` — merge registry dumps and print the text
  exposition; ``--require NAME`` / ``--require-min NAME=VALUE`` turn it
  into a CI gate over the merged values (exit 1 on a miss).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.export import (
    build_trace_trees,
    check_spans,
    read_jsonl,
    render_message_chart,
    render_span_tree,
)
from repro.obs.metrics import MetricsRegistry


def _cmd_render(args) -> int:
    spans = read_jsonl(args.file)
    if not spans:
        print("(no spans)")
        return 0
    print(render_span_tree(spans, max_traces=args.max_traces))
    if args.chart:
        print()
        print(render_message_chart(spans))
    return 0


def _cmd_check(args) -> int:
    spans = read_jsonl(args.file)
    problems = check_spans(spans, require_names=args.require_span)
    traces = len(build_trace_trees(spans))
    if traces < args.min_traces:
        problems.append(
            f"expected at least {args.min_traces} trace(s), found {traces}"
        )
    if problems:
        for problem in problems:
            print(f"PROBLEM: {problem}", file=sys.stderr)
        return 1
    print(f"OK: {traces} trace(s), {len(spans)} span(s)")
    return 0


def _cmd_metrics(args) -> int:
    registry = MetricsRegistry()
    for path in args.files:
        with open(path, "r", encoding="utf-8") as fh:
            registry.merge(json.load(fh))
    print(registry.render_text())
    snapshot = registry.snapshot()
    problems = []
    for name in args.require:
        if name not in snapshot:
            problems.append(f"required metric {name!r} is missing")
    for spec in args.require_min:
        name, _, bound = spec.rpartition("=")
        if not name:
            problems.append(f"bad --require-min {spec!r}; want NAME=VALUE")
            continue
        value = snapshot.get(name)
        if not isinstance(value, (int, float)) or value < float(bound):
            problems.append(
                f"metric {name!r} is {value!r}, need >= {bound}"
            )
    if problems:
        for problem in problems:
            print(f"PROBLEM: {problem}", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect BRMI trace files and metrics dumps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    render = sub.add_parser("render", help="render span trees from a trace")
    render.add_argument("file", help="JSONL trace file")
    render.add_argument("--chart", action="store_true",
                        help="also draw the message chart")
    render.add_argument("--max-traces", type=int, default=None,
                        help="limit the number of traces rendered")
    render.set_defaults(func=_cmd_render)

    check = sub.add_parser("check", help="verify a trace is well formed")
    check.add_argument("file", help="JSONL trace file")
    check.add_argument("--min-traces", type=int, default=1)
    check.add_argument("--require-span", action="append", default=[],
                       metavar="NAME",
                       help="span name that must appear (repeatable)")
    check.set_defaults(func=_cmd_check)

    metrics = sub.add_parser("metrics", help="merge and render metrics dumps")
    metrics.add_argument("files", nargs="+", help="registry JSON dumps")
    metrics.add_argument("--require", action="append", default=[],
                         metavar="NAME",
                         help="metric name that must appear in the merge "
                              "(repeatable; exit 1 if missing) — e.g. one "
                              "proc.<pid>.up per expected worker")
    metrics.add_argument("--require-min", action="append", default=[],
                         metavar="NAME=VALUE",
                         help="metric that must be >= VALUE in the merge "
                              "(repeatable; exit 1 if below or missing)")
    metrics.set_defaults(func=_cmd_metrics)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
