"""CLI for trace files, metrics dumps, and live endpoints: ``python -m repro.obs``.

Post-mortem subcommands:

- ``render FILE``  — span tree per trace (``--chart`` adds the Figure-1
  message chart built from ``client.send`` spans);
- ``check FILE``   — well-formedness gate for CI (exit 1 on problems;
  ``--allow-orphans`` tolerates cross-process parents in partial
  captures);
- ``metrics FILE [FILE ...]`` — merge registry dumps and print the text
  exposition; ``--require NAME`` / ``--require-min NAME=VALUE`` turn it
  into a CI gate over the merged values (exit 1 on a miss).

Live subcommands (the :mod:`repro.obs.live` admin plane; *ADDRESS* is
the ``ADMIN tcp://...`` line a ``serve --admin-port`` process prints —
a worker's own endpoint or a supervisor's cluster aggregation):

- ``top ADDRESS``      — live per-shard + merged view: readiness,
  in-flight spans with elapsed time, the slow log with trace-id
  exemplars, and the metrics exposition; refreshes every
  ``--interval`` seconds until interrupted (``--once`` for one poll);
- ``health ADDRESS``   — one health poll as JSON; ``--require-ready``
  exits 1 unless every shard is up and ready (the CI/ops gate);
- ``snapshot ADDRESS`` — one full snapshot as JSON (``-o FILE`` to
  save it as a CI artifact).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.obs.export import (
    build_trace_trees,
    check_spans,
    read_jsonl,
    render_message_chart,
    render_span_tree,
)
from repro.obs.metrics import MetricsRegistry


def _cmd_render(args) -> int:
    spans = read_jsonl(args.file)
    if not spans:
        print("(no spans)")
        return 0
    print(render_span_tree(spans, max_traces=args.max_traces))
    if args.chart:
        print()
        print(render_message_chart(spans))
    return 0


def _cmd_check(args) -> int:
    spans = read_jsonl(args.file)
    problems = check_spans(spans, require_names=args.require_span,
                           allow_orphans=args.allow_orphans)
    traces = len(build_trace_trees(spans))
    if traces < args.min_traces:
        problems.append(
            f"expected at least {args.min_traces} trace(s), found {traces}"
        )
    if problems:
        for problem in problems:
            print(f"PROBLEM: {problem}", file=sys.stderr)
        return 1
    print(f"OK: {traces} trace(s), {len(spans)} span(s)")
    return 0


def _cmd_metrics(args) -> int:
    registry = MetricsRegistry()
    for path in args.files:
        with open(path, "r", encoding="utf-8") as fh:
            registry.merge(json.load(fh))
    print(registry.render_text())
    snapshot = registry.snapshot()
    problems = []
    for name in args.require:
        if name not in snapshot:
            problems.append(f"required metric {name!r} is missing")
    for spec in args.require_min:
        name, _, bound = spec.rpartition("=")
        if not name:
            problems.append(f"bad --require-min {spec!r}; want NAME=VALUE")
            continue
        value = snapshot.get(name)
        if not isinstance(value, (int, float)) or value < float(bound):
            problems.append(
                f"metric {name!r} is {value!r}, need >= {bound}"
            )
    if problems:
        for problem in problems:
            print(f"PROBLEM: {problem}", file=sys.stderr)
        return 1
    return 0


# -- live admin-plane commands ----------------------------------------------


def _indent(text: str, prefix: str = "  ") -> list:
    return [prefix + line for line in text.splitlines()]


def _render_flight(flight: dict, prefix: str = "  ") -> list:
    lines = []
    inflight = flight.get("inflight", [])
    lines.append(f"{prefix}in-flight: {len(inflight)}")
    for entry in inflight[:8]:
        lines.append(
            f"{prefix}  {entry.get('name'):<18} "
            f"{entry.get('elapsed_ms', 0.0):9.1f}ms elapsed  "
            f"trace={entry.get('trace_id')}"
        )
    slow = flight.get("slow", [])
    threshold = flight.get("slow_threshold_s")
    lines.append(f"{prefix}slow (>= {threshold}s): {len(slow)}")
    for entry in slow[-8:]:
        lines.append(
            f"{prefix}  {entry.get('name'):<18} "
            f"{entry.get('duration_ms', 0.0):9.1f}ms  "
            f"trace={entry.get('trace_id')}"
        )
    return lines


def _render_worker(reply: dict) -> str:
    health = reply.get("health", {})
    lines = [
        f"worker pid={health.get('pid')} ready={health.get('ready')} "
        f"uptime={health.get('uptime_s')}s"
    ]
    lines.extend(_render_flight(reply.get("flight", {})))
    metrics = reply.get("metrics")
    if metrics:
        lines.append("metrics:")
        lines.extend(
            _indent(MetricsRegistry.from_dict(metrics).render_text())
        )
    return "\n".join(lines)


def _render_cluster(reply: dict) -> str:
    health = reply.get("health", {})
    lines = [
        f"cluster procs={health.get('procs')} ready={health.get('ready')} "
        f"uptime={health.get('uptime_s')}s"
    ]
    for shard in reply.get("shards", []):
        shard_health = shard.get("health", {})
        flight = shard.get("flight", {})
        lines.append(
            f"shard {shard.get('address')} pid={shard_health.get('pid')} "
            f"ready={shard_health.get('ready')} "
            f"inflight={len(flight.get('inflight', []))} "
            f"slow={len(flight.get('slow', []))}"
        )
        lines.extend(_render_flight(flight, prefix="    "))
    for error in reply.get("shard_errors", []):
        lines.append(f"shard {error.get('address')} UNREACHABLE: "
                     f"{error.get('error')}")
    merged = reply.get("merged")
    if merged:
        lines.append("merged:")
        lines.extend(
            _indent(MetricsRegistry.from_dict(merged).render_text())
        )
    return "\n".join(lines)


def _render_snapshot(reply: dict) -> str:
    role = reply.get("health", {}).get("role")
    if role == "supervisor":
        return _render_cluster(reply)
    return _render_worker(reply)


def _cmd_top(args) -> int:
    from repro.obs.live import AdminClient, AdminError

    try:
        with AdminClient(args.address, timeout=args.timeout) as client:
            while True:
                reply = client.request("snapshot")
                print(_render_snapshot(reply), flush=True)
                if args.once:
                    return 0
                print("-" * 64, flush=True)
                time.sleep(args.interval)
    except AdminError as exc:
        print(f"PROBLEM: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 0


def _cmd_health(args) -> int:
    from repro.obs.live import AdminError, admin_request

    try:
        reply = admin_request(args.address, "health", timeout=args.timeout)
    except AdminError as exc:
        print(f"PROBLEM: {exc}", file=sys.stderr)
        return 1
    reply.pop("ok", None)
    print(json.dumps(reply, sort_keys=True))
    if args.require_ready and not reply.get("ready"):
        print("PROBLEM: endpoint is not ready", file=sys.stderr)
        return 1
    return 0


def _cmd_snapshot(args) -> int:
    from repro.obs.live import AdminError, admin_request

    try:
        reply = admin_request(args.address, "snapshot", timeout=args.timeout)
    except AdminError as exc:
        print(f"PROBLEM: {exc}", file=sys.stderr)
        return 1
    reply.pop("ok", None)
    payload = json.dumps(reply, sort_keys=True, indent=2)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")
        print(f"SNAPSHOT {args.output}")
    else:
        print(payload)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect BRMI trace files and metrics dumps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    render = sub.add_parser("render", help="render span trees from a trace")
    render.add_argument("file", help="JSONL trace file")
    render.add_argument("--chart", action="store_true",
                        help="also draw the message chart")
    render.add_argument("--max-traces", type=int, default=None,
                        help="limit the number of traces rendered")
    render.set_defaults(func=_cmd_render)

    check = sub.add_parser("check", help="verify a trace is well formed")
    check.add_argument("file", help="JSONL trace file")
    check.add_argument("--min-traces", type=int, default=1)
    check.add_argument("--require-span", action="append", default=[],
                       metavar="NAME",
                       help="span name that must appear (repeatable)")
    check.add_argument("--allow-orphans", action="store_true",
                       help="tolerate parent ids found nowhere in the "
                            "export (partial capture: the parent ran in "
                            "a process whose trace you don't have)")
    check.set_defaults(func=_cmd_check)

    metrics = sub.add_parser("metrics", help="merge and render metrics dumps")
    metrics.add_argument("files", nargs="+", help="registry JSON dumps")
    metrics.add_argument("--require", action="append", default=[],
                         metavar="NAME",
                         help="metric name that must appear in the merge "
                              "(repeatable; exit 1 if missing) — e.g. one "
                              "proc.<pid>.up per expected worker")
    metrics.add_argument("--require-min", action="append", default=[],
                         metavar="NAME=VALUE",
                         help="metric that must be >= VALUE in the merge "
                              "(repeatable; exit 1 if below or missing)")
    metrics.set_defaults(func=_cmd_metrics)

    top = sub.add_parser("top", help="live view of an admin endpoint")
    top.add_argument("address", help="admin address (the ADMIN stdout line)")
    top.add_argument("--once", action="store_true",
                     help="poll once and exit (scripting/CI)")
    top.add_argument("--interval", type=float, default=1.0,
                     help="seconds between refreshes (default 1)")
    top.add_argument("--timeout", type=float, default=5.0,
                     help="per-poll timeout in seconds")
    top.set_defaults(func=_cmd_top)

    health = sub.add_parser("health", help="health-poll an admin endpoint")
    health.add_argument("address")
    health.add_argument("--require-ready", action="store_true",
                        help="exit 1 unless the endpoint (and, for a "
                             "supervisor, every shard) reports ready")
    health.add_argument("--timeout", type=float, default=5.0)
    health.set_defaults(func=_cmd_health)

    snapshot = sub.add_parser(
        "snapshot", help="capture one full admin snapshot as JSON"
    )
    snapshot.add_argument("address")
    snapshot.add_argument("-o", "--output", default=None, metavar="FILE",
                          help="write the snapshot here instead of stdout")
    snapshot.add_argument("--timeout", type=float, default=5.0)
    snapshot.set_defaults(func=_cmd_snapshot)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
