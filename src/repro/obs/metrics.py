"""Unified metrics: named counters, gauges, histograms; mergeable registries.

Before this module the repo's telemetry was fragmented — ``TrafficStats``
here, aio-only ``ServerMetrics`` there, plan-cache/dedup/buffer-pool
counters each with their own ad-hoc snapshot shape.  A
:class:`MetricsRegistry` gives them one namespace, one text exposition,
and one dump format that **merges across processes**: counters and
gauges sum, histogram windows concatenate (bounded), which is the
aggregation primitive the ROADMAP's multi-process items need.

Percentile math lives here, in :func:`percentile` and
:class:`Histogram`, and nowhere else — ``repro.aio.metrics`` is backed
by this histogram type.
"""

from __future__ import annotations

import math
import threading
from collections import deque

#: Samples a histogram window retains for percentile estimates.
DEFAULT_WINDOW = 2048


class MetricsKindError(ValueError):
    """One name requested as two instrument kinds (counter vs gauge vs
    histogram) — in one process or across merged dumps.

    Summing a counter into a gauge (or concatenating either into a
    histogram window) silently corrupts the books, so the registry
    fails loudly instead: the conflict is always a naming bug in the
    publisher, never a legitimate aggregation.
    """

    def __init__(self, name: str, wanted: str, existing: str):
        self.name = name
        self.wanted = wanted
        self.existing = existing
        super().__init__(
            f"metric {name!r} already registered as a {existing}; "
            f"cannot also use it as a {wanted}"
        )


def percentile(ordered, q):
    """Nearest-rank percentile of an already-sorted sample list."""
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


class Counter:
    """A thread-safe monotonic counter."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str = ""):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up: {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        with self._lock:
            return self._value


class Gauge:
    """A thread-safe point-in-time value."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str = ""):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def set(self, value) -> None:
        with self._lock:
            self._value = value

    def add(self, amount) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self):
        with self._lock:
            return self._value


class Histogram:
    """A windowed sample reservoir with nearest-rank percentiles.

    ``count``/``total`` cover every observation ever made; percentiles
    are estimated over the last *window* samples (matching the
    pre-existing ``ServerMetrics`` semantics).  :meth:`merge_samples`
    folds another histogram's dump in, for cross-process aggregation.
    """

    __slots__ = ("name", "_lock", "_samples", "_count", "_total")

    def __init__(self, name: str = "", window: int = DEFAULT_WINDOW):
        if window < 1:
            raise ValueError(f"window must be >= 1: {window}")
        self.name = name
        self._lock = threading.Lock()
        self._samples = deque(maxlen=window)
        self._count = 0
        self._total = 0.0

    def observe(self, value) -> None:
        with self._lock:
            self._samples.append(value)
            self._count += 1
            self._total += value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._total

    def samples(self) -> list:
        """Snapshot of the current window, in observation order."""
        with self._lock:
            return list(self._samples)

    def percentile(self, q: float) -> float:
        return self.percentiles((q,))[0]

    def percentiles(self, qs) -> tuple:
        """Several percentiles from one sort of the window."""
        with self._lock:
            ordered = sorted(self._samples)
        return tuple(percentile(ordered, q) for q in qs)

    def merge_samples(self, values, count: int = None,
                      total: float = None) -> None:
        """Fold another histogram's dump into this one.

        *count*/*total* default to the obvious sums over *values*; pass
        them explicitly when merging a dump whose window undercounts its
        lifetime observations.
        """
        values = list(values)
        with self._lock:
            self._samples.extend(values)
            self._count += len(values) if count is None else count
            self._total += (
                float(sum(values)) if total is None else float(total)
            )

    def summary(self) -> dict:
        """Percentile/count summary (the exposition's histogram shape)."""
        with self._lock:
            ordered = sorted(self._samples)
            count, total = self._count, self._total
        return {
            "count": count,
            "sum": total,
            "p50": percentile(ordered, 0.50),
            "p90": percentile(ordered, 0.90),
            "p99": percentile(ordered, 0.99),
            "max": ordered[-1] if ordered else 0.0,
        }

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "count": self._count,
                "sum": self._total,
                "samples": list(self._samples),
            }


class MetricsRegistry:
    """A namespace of counters/gauges/histograms plus pluggable collectors.

    Accessors are get-or-create (two calls with one name return the one
    instrument).  *Collectors* are zero-argument callables returning
    ``{name: number}``, evaluated at snapshot/render time — how existing
    stat sources (``TrafficStats``, ``ServerMetrics``, plan cache,
    dedup, buffer pool) publish without holding a registry reference;
    see :mod:`repro.obs.bridge`.  Duplicate names across collectors
    **sum**, so N connections can publish under one metric.

    :meth:`to_dict` / :meth:`merge` / :meth:`from_dict` implement the
    cross-process contract: counters and gauges sum, histogram windows
    concatenate.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        self._collectors = []

    # -- instruments -----------------------------------------------------

    def _check_kind(self, name: str, wanted: str) -> None:
        """Raise :class:`MetricsKindError` when *name* already exists as
        another kind (the merge-conflict guard; lock held by caller)."""
        for existing, store in (("counter", self._counters),
                                ("gauge", self._gauges),
                                ("histogram", self._histograms)):
            if existing != wanted and name in store:
                raise MetricsKindError(name, wanted, existing)

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_kind(name, "counter")
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._check_kind(name, "gauge")
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str, window: int = DEFAULT_WINDOW) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._check_kind(name, "histogram")
                instrument = self._histograms[name] = Histogram(name, window)
            return instrument

    def add_collector(self, collect) -> None:
        """Register ``collect() -> {name: number}`` (evaluated lazily)."""
        if not callable(collect):
            raise TypeError("collector must be callable")
        with self._lock:
            self._collectors.append(collect)

    # -- reading ---------------------------------------------------------

    def collected(self) -> dict:
        """Evaluate every collector; duplicate names sum."""
        with self._lock:
            collectors = list(self._collectors)
        out = {}
        for collect in collectors:
            for name, value in collect().items():
                out[name] = out.get(name, 0) + value
        return out

    def snapshot(self) -> dict:
        """Flat ``{name: number-or-summary}`` view of everything."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        out = {name: c.value for name, c in counters.items()}
        out.update({name: g.value for name, g in gauges.items()})
        out.update(self.collected())
        for name, hist in histograms.items():
            out[name] = hist.summary()
        return out

    def to_dict(self) -> dict:
        """The mergeable dump.  Collector outputs land under ``gauges``
        (they are instantaneous reads of external counters; summing them
        across processes is the aggregate a cluster wants)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        gauge_dump = {name: g.value for name, g in gauges.items()}
        for name, value in self.collected().items():
            gauge_dump[name] = gauge_dump.get(name, 0) + value
        return {
            "counters": {name: c.value for name, c in counters.items()},
            "gauges": gauge_dump,
            "histograms": {
                name: h.to_dict() for name, h in histograms.items()
            },
        }

    def merge(self, dump: dict) -> "MetricsRegistry":
        """Fold a :meth:`to_dict` dump (another process's registry) in.

        Raises :class:`MetricsKindError` when *dump* uses a name this
        registry holds as a different instrument kind — counter-vs-gauge
        conflicts must never sum silently.  The merge is not atomic:
        entries processed before the conflict are already folded in, so
        callers that must stay consistent validate with
        :meth:`from_dict` on a scratch registry first (what the
        supervisor's per-file merge does).
        """
        for name, value in dump.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in dump.get("gauges", {}).items():
            self.gauge(name).add(value)
        for name, hist in dump.get("histograms", {}).items():
            self.histogram(name).merge_samples(
                hist.get("samples", ()),
                count=hist.get("count"),
                total=hist.get("sum"),
            )
        return self

    @classmethod
    def from_dict(cls, dump: dict) -> "MetricsRegistry":
        return cls().merge(dump)

    def render_text(self) -> str:
        """One deterministic text exposition: ``name value`` per line,
        histograms expanded to ``name.count/.sum/.p50/.p90/.p99/.max``."""
        lines = []
        snapshot = self.snapshot()
        for name in sorted(snapshot):
            value = snapshot[name]
            if isinstance(value, dict):
                for key in ("count", "sum", "p50", "p90", "p99", "max"):
                    lines.append(f"{name}.{key} {_fmt(value[key])}")
            else:
                lines.append(f"{name} {_fmt(value)}")
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
