"""Bridges: publish the existing stat sources into a MetricsRegistry.

Each ``bind_*`` helper registers a *collector* — a closure evaluated at
snapshot/render time — so the stat sources keep their public APIs and
never learn about registries, and a registry snapshot is always a live
read, not a stale copy.  Names are dotted and stable; the exposition
(:meth:`~repro.obs.metrics.MetricsRegistry.render_text`) sorts them.
"""

from __future__ import annotations

import os

from repro.obs.metrics import MetricsRegistry


def bind_process(registry: MetricsRegistry, pid: int = None,
                 prefix: str = "proc") -> int:
    """Publish this process's liveness under a per-pid metric name.

    Two gauges: ``procs.up`` (1 per process — merged across worker
    dumps it counts the shard group) and ``proc.<pid>.up`` (1 — merged,
    one line per worker pid, so a merged exposition *shows* which
    processes reported in; the CI procs-smoke job asserts on it).
    Returns the pid it published.
    """
    pid = os.getpid() if pid is None else pid
    registry.gauge(f"{prefix}s.up").set(1)
    registry.gauge(f"{prefix}.{pid}.up").set(1)
    return pid


def bind_traffic_stats(registry: MetricsRegistry, stats,
                       prefix: str = "net") -> None:
    """Publish a :class:`~repro.net.stats.TrafficStats` (requests, bytes
    both ways, middleware charges)."""

    def collect():
        snap = stats.snapshot()
        out = {
            f"{prefix}.requests": snap.requests,
            f"{prefix}.bytes_sent": snap.bytes_sent,
            f"{prefix}.bytes_received": snap.bytes_received,
        }
        for kind, count in snap.charges.items():
            out[f"{prefix}.charge.{kind}"] = count
        return out

    registry.add_collector(collect)


def bind_plan_cache(registry: MetricsRegistry, cache,
                    prefix: str = "plan_cache") -> None:
    """Publish a :class:`~repro.plan.cache.PlanCache`'s counters."""

    def collect():
        snap = cache.stats.snapshot()
        return {
            f"{prefix}.hits": snap.hits,
            f"{prefix}.misses": snap.misses,
            f"{prefix}.installs": snap.installs,
            f"{prefix}.evictions": snap.evictions,
            f"{prefix}.bytes_saved": snap.bytes_saved,
            f"{prefix}.size": snap.size,
        }

    registry.add_collector(collect)


def bind_dedup(registry: MetricsRegistry, window,
               prefix: str = "dedup") -> None:
    """Publish a :class:`~repro.rmi.dispatch.DedupWindow`'s counters."""

    def collect():
        return {
            f"{prefix}.hits": window.hits,
            f"{prefix}.executed": window.executed,
            f"{prefix}.entries": len(window),
        }

    registry.add_collector(collect)


def bind_buffer_pool(registry: MetricsRegistry, pool=None,
                     prefix: str = "wire.buffers") -> None:
    """Publish a :class:`~repro.wire.buffers.BufferPool`'s reuse counters
    (the process-wide pool by default)."""
    if pool is None:
        from repro.wire.buffers import GLOBAL_POOL

        pool = GLOBAL_POOL

    def collect():
        return {
            f"{prefix}.acquired": pool.acquired,
            f"{prefix}.reused": pool.reused,
        }

    registry.add_collector(collect)


def bind_server_metrics(registry: MetricsRegistry, source,
                        prefix: str = "server.runtime") -> None:
    """Publish :class:`~repro.aio.metrics.ServerMetrics` snapshots.

    *source* is anything with a ``metrics`` attribute/property returning
    a snapshot or ``None`` (an :class:`~repro.rmi.server.RMIServer`, an
    :class:`~repro.aio.listener.AioListener`)."""

    def collect():
        snap = source.metrics
        if snap is None:
            return {}
        return {
            f"{prefix}.in_flight": snap.in_flight,
            f"{prefix}.queued": snap.queued,
            f"{prefix}.served": snap.served,
            f"{prefix}.shed": snap.shed,
            f"{prefix}.p50_ms": snap.p50_ms,
            f"{prefix}.p99_ms": snap.p99_ms,
        }

    registry.add_collector(collect)


def bind_server(registry: MetricsRegistry, server,
                prefix: str = "server") -> None:
    """Publish everything one :class:`~repro.rmi.server.RMIServer` knows:
    traffic, dedup, runtime metrics (aio), and — once the lazy plan
    runtime exists — the plan cache.  Binding never *creates* the plan
    runtime; the collector checks again at every snapshot."""
    bind_dedup(registry, server.dedup, prefix=f"{prefix}.dedup")
    bind_server_metrics(registry, server, prefix=f"{prefix}.runtime")

    def collect_traffic():
        try:
            snap = server.stats.snapshot()
        except RuntimeError:  # never started
            return {}
        out = {
            f"{prefix}.requests": snap.requests,
            f"{prefix}.bytes_sent": snap.bytes_sent,
            f"{prefix}.bytes_received": snap.bytes_received,
        }
        for kind, count in snap.charges.items():
            out[f"{prefix}.charge.{kind}"] = count
        return out

    def collect_plan_cache():
        runtime = server._plan_runtime  # lazily created; do not force it
        if runtime is None:
            return {}
        snap = runtime.cache.stats.snapshot()
        return {
            f"{prefix}.plan_cache.hits": snap.hits,
            f"{prefix}.plan_cache.misses": snap.misses,
            f"{prefix}.plan_cache.installs": snap.installs,
            f"{prefix}.plan_cache.evictions": snap.evictions,
            f"{prefix}.plan_cache.bytes_saved": snap.bytes_saved,
            f"{prefix}.plan_cache.size": snap.size,
        }

    def collect_scheduler():
        executor = server._batch_executor  # lazily created; do not force it
        if executor is None:
            return {}
        snap = executor.scheduler.snapshot()
        return {
            f"{prefix}.scheduler.{name}": value
            for name, value in snap.items()
        }

    registry.add_collector(collect_traffic)
    registry.add_collector(collect_plan_cache)
    registry.add_collector(collect_scheduler)


def bind_client(registry: MetricsRegistry, client,
                prefix: str = "client") -> None:
    """Publish an :class:`~repro.rmi.client.RMIClient`'s traffic and —
    if plan reuse ever ran — its memo's strategy counters.  Multiple
    clients bound under one prefix sum (collector semantics)."""
    bind_traffic_stats(registry, client.stats, prefix=prefix)

    def collect_memo():
        memo = client._plan_memo  # lazily created; do not force it
        if memo is None:
            return {}
        return {
            f"{prefix}.plan.inline_flushes": memo.inline_flushes,
            f"{prefix}.plan.invocations": memo.plan_invocations,
            f"{prefix}.plan.installs": memo.plan_installs,
        }

    registry.add_collector(collect_memo)
