"""The span model and the lock-cheap per-process tracer.

Design constraints, in order:

- **cheap when off** — instrumented hot paths call
  :func:`current_tracer` and bail on ``None``; no tracer, no cost
  beyond one module-global read;
- **lock-cheap when on** — finished spans append to a bounded
  ``deque`` (a GIL-atomic operation), so transport threads, pool
  workers and the event loop never contend on a tracer lock;
- **head sampling with forced upgrades** — the sampling decision is
  made once, where a trace's root span starts.  A *forced* span (a
  retry attempt, a shed request, an injected fault) records even in an
  unsampled trace and upgrades the whole live trace, so failures are
  never invisible at any sample rate.

Span timestamps come from ``time.monotonic()`` (or a virtual clock
injected for tests): durations are exact within a process; absolute
values are not comparable across processes.
"""

from __future__ import annotations

import itertools
import json
import time
import uuid
from collections import deque

from repro.obs.context import TraceContext, _activate, _deactivate, current_span

#: Finished spans the tracer retains (oldest dropped past this).
DEFAULT_CAPACITY = 65536

#: Sentinel: "no explicit parent given — use the ambient span".
_AMBIENT = object()


class _TraceState:
    """Mutable per-trace sampling flag shared by all of a trace's spans,
    so one forced span upgrades everything recorded after it."""

    __slots__ = ("sampled",)

    def __init__(self, sampled: bool):
        self.sampled = sampled


class Span:
    """One timed operation in a trace.

    Usable as a context manager (which also makes it the ambient parent
    for spans started within the block) or via explicit :meth:`end` for
    spans that straddle a function boundary.
    """

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "started_at",
                 "ended_at", "attrs", "_tracer", "_state", "_token", "_ended")

    def __init__(self, tracer, state, name, trace_id, span_id, parent_id,
                 started_at, attrs):
        self._tracer = tracer
        self._state = state
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.started_at = started_at
        self.ended_at = None
        self.attrs = attrs
        self._token = None
        self._ended = False

    @property
    def sampled(self) -> bool:
        """Whether this span's trace records (may flip via a forced span)."""
        return self._state.sampled

    def force_sample(self) -> None:
        """Upgrade the whole live trace to sampled."""
        self._state.sampled = True

    def set(self, **attrs) -> "Span":
        """Attach attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def context(self) -> TraceContext:
        """This span's wire identity (what a request would carry)."""
        return TraceContext(self.trace_id, self.span_id, self.parent_id)

    def end(self, ended_at: float = None) -> None:
        """Finish the span; records it if the trace sampled.  Idempotent."""
        if self._ended:
            return
        self._ended = True
        self.ended_at = (
            self._tracer.now() if ended_at is None else ended_at
        )
        if self._state.sampled:
            self._tracer._record(self)

    @property
    def duration(self) -> float:
        end = self.ended_at if self.ended_at is not None else self.started_at
        return end - self.started_at

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.started_at,
            "end": self.ended_at,
            "attrs": dict(self.attrs),
        }

    def __enter__(self) -> "Span":
        self._token = _activate(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        if self._token is not None:
            _deactivate(self._token)
            self._token = None
        if exc is not None and "error" not in self.attrs:
            self.attrs["error"] = repr(exc)
        self.end()
        return False

    def __repr__(self):
        return (f"Span({self.name!r}, trace={self.trace_id}, "
                f"id={self.span_id}, parent={self.parent_id or None})")


class Tracer:
    """Per-process span recorder with head sampling.

    *sample_rate* is the probability a new trace records (1.0 records
    everything, 0.0 only forced spans).  *capacity* bounds retained
    spans; *clock* defaults to ``time.monotonic`` and may be a virtual
    clock in tests.  Deterministic sampling for tests: pass *seed*.
    """

    def __init__(self, sample_rate: float = 1.0,
                 capacity: int = DEFAULT_CAPACITY,
                 clock=time.monotonic, seed: int = None):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1]: {sample_rate}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        import random

        self.sample_rate = sample_rate
        self._clock = clock
        self._spans = deque(maxlen=capacity)
        self._rng = random.Random(seed)
        self._prefix = uuid.uuid4().hex[:10]
        self._ids = itertools.count(1)

    # -- span creation ---------------------------------------------------

    def now(self) -> float:
        """The tracer's clock (monotonic unless injected otherwise)."""
        return self._clock()

    def span(self, name: str, parent=_AMBIENT, force: bool = False,
             started_at: float = None, **attrs) -> Span:
        """Start a span.

        *parent* may be a :class:`Span`, a :class:`TraceContext` from
        the wire (the far side sampled, so the trace records), or
        ``None`` to force a new root.  Left unset, the ambient span (if
        any) is the parent.  A parentless span makes the head-sampling
        decision for its new trace; *force* records regardless and
        upgrades a live unsampled trace.
        """
        if parent is _AMBIENT:
            parent = current_span()
        if parent is None:
            sampled = force or self._sample()
            state = _TraceState(sampled)
            trace_id = self._next_id()
            parent_id = ""
        elif isinstance(parent, Span):
            state = parent._state
            if force:
                state.sampled = True
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:  # TraceContext off the wire: the sender already sampled
            state = _TraceState(True)
            trace_id = parent.trace_id
            parent_id = parent.span_id
        return Span(
            self, state, name, trace_id, self._next_id(), parent_id,
            self.now() if started_at is None else started_at, attrs,
        )

    def record(self, name: str, started_at: float, ended_at: float,
               parent=_AMBIENT, force: bool = False, **attrs) -> Span:
        """Record a completed span in one shot (explicit timestamps) —
        for events observed after the fact, like queue wait."""
        span = self.span(name, parent=parent, force=force,
                         started_at=started_at, **attrs)
        span.end(ended_at)
        return span

    def _sample(self) -> bool:
        rate = self.sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        return self._rng.random() < rate

    def _next_id(self) -> str:
        return f"{self._prefix}-{next(self._ids):x}"

    def _record(self, span: Span) -> None:
        self._spans.append(span)

    # -- reading ---------------------------------------------------------

    def spans(self) -> list:
        """Snapshot of recorded spans in completion order."""
        return list(self._spans)

    def clear(self) -> None:
        self._spans.clear()

    def __len__(self):
        return len(self._spans)

    # -- export ----------------------------------------------------------

    def export_jsonl(self, path) -> int:
        """Write recorded spans as JSON lines; returns the span count."""
        spans = self.spans()
        with open(path, "w", encoding="utf-8") as fh:
            for span in spans:
                fh.write(json.dumps(span.to_dict(), sort_keys=True))
                fh.write("\n")
        return len(spans)


#: The process-wide tracer instrumented code consults (None = tracing off).
_installed = None


def install_tracer(tracer: Tracer) -> Tracer:
    """Make *tracer* the process-wide tracer; returns it for chaining."""
    global _installed
    if not isinstance(tracer, Tracer):
        raise TypeError(f"expected a Tracer, got {type(tracer).__name__}")
    _installed = tracer
    return tracer


def uninstall_tracer() -> None:
    """Disable tracing (instrumented paths return to the no-op guard)."""
    global _installed
    _installed = None


def current_tracer():
    """The installed tracer, or ``None`` when tracing is off."""
    return _installed
