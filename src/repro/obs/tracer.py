"""The span model and the lock-cheap per-process tracer.

Design constraints, in order:

- **cheap when off** — instrumented hot paths call
  :func:`current_tracer` and bail on ``None``; no tracer, no cost
  beyond one module-global read;
- **lock-cheap when on** — finished spans append to a bounded
  ``deque`` (a GIL-atomic operation), so transport threads, pool
  workers and the event loop never contend on a tracer lock;
- **head sampling with forced upgrades** — the sampling decision is
  made once, where a trace's root span starts.  A *forced* span (a
  retry attempt, a shed request, an injected fault) records even in an
  unsampled trace and upgrades the whole live trace, so failures are
  never invisible at any sample rate;
- **always-on flight recording** — every span, sampled or not, feeds
  the tracer's :class:`FlightRecorder` (a bounded ring of recently
  completed spans, the currently in-flight set, and a slow log with
  trace-id exemplars), so a live admin endpoint can show what a server
  is doing *right now* even at sample rate 0.

Span timestamps come from ``time.monotonic()`` (or a virtual clock
injected for tests): durations are exact within a process; absolute
values are not comparable across processes.
"""

from __future__ import annotations

import itertools
import json
import time
import uuid
from collections import deque

from repro.obs.context import TraceContext, _activate, _deactivate, current_span

#: Finished spans the tracer retains (oldest dropped past this).
DEFAULT_CAPACITY = 65536

#: Completed spans the flight recorder's ring retains.
DEFAULT_FLIGHT_CAPACITY = 256

#: Slow-log entries the flight recorder retains.
DEFAULT_SLOW_CAPACITY = 128

#: Seconds past which a completed span lands in the slow log.
DEFAULT_SLOW_THRESHOLD = 0.25

#: Sentinel: "no explicit parent given — use the ambient span".
_AMBIENT = object()

#: Sentinel: "build the tracer a default flight recorder".
_AUTO_FLIGHT = object()


class FlightRecorder:
    """Always-on operational view of recent and in-flight spans.

    Three bounded structures, all fed by the tracer for **every** span
    regardless of the sampling decision (the point is live
    introspection of a degrading server, which must work at sample rate
    0 and must never depend on an export having happened):

    - a ring of the last *capacity* **completed** spans;
    - the set of currently **in-flight** spans (started, not ended) —
      a hung or slow request is visible *while it hangs*, with its
      elapsed time;
    - a **slow log** of the last *slow_capacity* spans whose duration
      reached *slow_threshold* seconds, each carrying its trace id —
      the exemplar that links a latency-histogram outlier to an actual
      trace.

    Every mutation is a single GIL-atomic dict/deque operation, so the
    hot path stays lock-free; :meth:`snapshot` (rare — an admin poll)
    retries the handful of iterations that can race a mutation.
    """

    def __init__(self, capacity: int = DEFAULT_FLIGHT_CAPACITY,
                 slow_capacity: int = DEFAULT_SLOW_CAPACITY,
                 slow_threshold: float = DEFAULT_SLOW_THRESHOLD):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        if slow_capacity < 1:
            raise ValueError(f"slow_capacity must be >= 1: {slow_capacity}")
        if slow_threshold < 0:
            raise ValueError(
                f"slow_threshold must be >= 0: {slow_threshold}"
            )
        self.capacity = capacity
        self.slow_threshold = slow_threshold
        self._completed = deque(maxlen=capacity)
        self._slow = deque(maxlen=slow_capacity)
        self._inflight = {}

    # -- feeding (hot path; one atomic op each) --------------------------

    def on_start(self, span) -> None:
        self._inflight[span.span_id] = span

    def on_end(self, span) -> None:
        self._inflight.pop(span.span_id, None)
        self._completed.append(span)
        if span.duration >= self.slow_threshold:
            self._slow.append({
                "name": span.name,
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "duration_ms": span.duration * 1e3,
                "ended_at": span.ended_at,
                "attrs": dict(span.attrs),
            })

    # -- reading ---------------------------------------------------------

    @staticmethod
    def _stable_copy(container):
        """Copy a structure other threads keep appending to; a raced
        iteration raises RuntimeError, so retry a few times."""
        for _ in range(8):
            try:
                return list(container)
            except RuntimeError:
                continue
        return []

    def completed(self) -> list:
        """The ring of recently completed spans, oldest first."""
        return self._stable_copy(self._completed)

    def inflight(self, now: float) -> list:
        """Currently running spans as dicts with elapsed time, oldest
        (longest-running) first."""
        spans = self._stable_copy(self._inflight.values())
        entries = [{
            "name": span.name,
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "elapsed_ms": max(0.0, (now - span.started_at) * 1e3),
            "attrs": dict(span.attrs),
        } for span in spans]
        entries.sort(key=lambda entry: -entry["elapsed_ms"])
        return entries

    def slow(self) -> list:
        """The slow log, oldest first; entries carry trace-id exemplars."""
        return self._stable_copy(self._slow)

    def snapshot(self, now: float) -> dict:
        """Everything the admin ``flight`` command serves, as one dict."""
        return {
            "capacity": self.capacity,
            "slow_threshold_s": self.slow_threshold,
            "completed": [span.to_dict() for span in self.completed()],
            "inflight": self.inflight(now),
            "slow": self.slow(),
        }

    def clear(self) -> None:
        self._completed.clear()
        self._slow.clear()
        self._inflight.clear()


class _TraceState:
    """Mutable per-trace sampling flag shared by all of a trace's spans,
    so one forced span upgrades everything recorded after it."""

    __slots__ = ("sampled",)

    def __init__(self, sampled: bool):
        self.sampled = sampled


class Span:
    """One timed operation in a trace.

    Usable as a context manager (which also makes it the ambient parent
    for spans started within the block) or via explicit :meth:`end` for
    spans that straddle a function boundary.
    """

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "started_at",
                 "ended_at", "attrs", "_tracer", "_state", "_token", "_ended")

    def __init__(self, tracer, state, name, trace_id, span_id, parent_id,
                 started_at, attrs):
        self._tracer = tracer
        self._state = state
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.started_at = started_at
        self.ended_at = None
        self.attrs = attrs
        self._token = None
        self._ended = False

    @property
    def sampled(self) -> bool:
        """Whether this span's trace records (may flip via a forced span)."""
        return self._state.sampled

    def force_sample(self) -> None:
        """Upgrade the whole live trace to sampled."""
        self._state.sampled = True

    def set(self, **attrs) -> "Span":
        """Attach attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def context(self) -> TraceContext:
        """This span's wire identity (what a request would carry)."""
        return TraceContext(self.trace_id, self.span_id, self.parent_id)

    def end(self, ended_at: float = None) -> None:
        """Finish the span; records it if the trace sampled.  Idempotent.

        The flight recorder (when the tracer keeps one) sees the end
        unconditionally — completion rings and the slow log work at any
        sample rate.
        """
        if self._ended:
            return
        self._ended = True
        self.ended_at = (
            self._tracer.now() if ended_at is None else ended_at
        )
        flight = self._tracer.flight
        if flight is not None:
            flight.on_end(self)
        if self._state.sampled:
            self._tracer._record(self)

    @property
    def duration(self) -> float:
        end = self.ended_at if self.ended_at is not None else self.started_at
        return end - self.started_at

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.started_at,
            "end": self.ended_at,
            "attrs": dict(self.attrs),
        }

    def __enter__(self) -> "Span":
        self._token = _activate(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        if self._token is not None:
            _deactivate(self._token)
            self._token = None
        if exc is not None and "error" not in self.attrs:
            self.attrs["error"] = repr(exc)
        self.end()
        return False

    def __repr__(self):
        return (f"Span({self.name!r}, trace={self.trace_id}, "
                f"id={self.span_id}, parent={self.parent_id or None})")


class Tracer:
    """Per-process span recorder with head sampling.

    *sample_rate* is the probability a new trace records (1.0 records
    everything, 0.0 only forced spans).  *capacity* bounds retained
    spans; *clock* defaults to ``time.monotonic`` and may be a virtual
    clock in tests.  Deterministic sampling for tests: pass *seed*.

    *flight* is the always-on :class:`FlightRecorder` every span feeds
    regardless of sampling (a default one is built; pass ``None`` to
    disable flight recording entirely).
    """

    def __init__(self, sample_rate: float = 1.0,
                 capacity: int = DEFAULT_CAPACITY,
                 clock=time.monotonic, seed: int = None,
                 flight=_AUTO_FLIGHT):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1]: {sample_rate}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        import random

        self.sample_rate = sample_rate
        self.flight = FlightRecorder() if flight is _AUTO_FLIGHT else flight
        self._clock = clock
        self._spans = deque(maxlen=capacity)
        self._rng = random.Random(seed)
        self._prefix = uuid.uuid4().hex[:10]
        self._ids = itertools.count(1)

    # -- span creation ---------------------------------------------------

    def now(self) -> float:
        """The tracer's clock (monotonic unless injected otherwise)."""
        return self._clock()

    def span(self, name: str, parent=_AMBIENT, force: bool = False,
             started_at: float = None, **attrs) -> Span:
        """Start a span.

        *parent* may be a :class:`Span`, a :class:`TraceContext` from
        the wire (the far side sampled, so the trace records), or
        ``None`` to force a new root.  Left unset, the ambient span (if
        any) is the parent.  A parentless span makes the head-sampling
        decision for its new trace; *force* records regardless and
        upgrades a live unsampled trace.
        """
        if parent is _AMBIENT:
            parent = current_span()
        if parent is None:
            sampled = force or self._sample()
            state = _TraceState(sampled)
            trace_id = self._next_id()
            parent_id = ""
        elif isinstance(parent, Span):
            state = parent._state
            if force:
                state.sampled = True
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:  # TraceContext off the wire: the sender already sampled
            state = _TraceState(True)
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(
            self, state, name, trace_id, self._next_id(), parent_id,
            self.now() if started_at is None else started_at, attrs,
        )
        if self.flight is not None:
            self.flight.on_start(span)
        return span

    def record(self, name: str, started_at: float, ended_at: float,
               parent=_AMBIENT, force: bool = False, **attrs) -> Span:
        """Record a completed span in one shot (explicit timestamps) —
        for events observed after the fact, like queue wait."""
        span = self.span(name, parent=parent, force=force,
                         started_at=started_at, **attrs)
        span.end(ended_at)
        return span

    def _sample(self) -> bool:
        rate = self.sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        return self._rng.random() < rate

    def _next_id(self) -> str:
        return f"{self._prefix}-{next(self._ids):x}"

    def _record(self, span: Span) -> None:
        self._spans.append(span)

    # -- reading ---------------------------------------------------------

    def spans(self) -> list:
        """Snapshot of recorded spans in completion order."""
        return list(self._spans)

    def clear(self) -> None:
        self._spans.clear()

    def __len__(self):
        return len(self._spans)

    # -- export ----------------------------------------------------------

    def export_jsonl(self, path) -> int:
        """Write recorded spans as JSON lines; returns the span count."""
        spans = self.spans()
        with open(path, "w", encoding="utf-8") as fh:
            for span in spans:
                fh.write(json.dumps(span.to_dict(), sort_keys=True))
                fh.write("\n")
        return len(spans)


#: The process-wide tracer instrumented code consults (None = tracing off).
_installed = None


def install_tracer(tracer: Tracer) -> Tracer:
    """Make *tracer* the process-wide tracer; returns it for chaining."""
    global _installed
    if not isinstance(tracer, Tracer):
        raise TypeError(f"expected a Tracer, got {type(tracer).__name__}")
    _installed = tracer
    return tracer


def uninstall_tracer() -> None:
    """Disable tracing (instrumented paths return to the no-op guard)."""
    global _installed
    _installed = None


def current_tracer():
    """The installed tracer, or ``None`` when tracing is off."""
    return _installed
