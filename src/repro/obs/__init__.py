"""Observability for the BRMI stack: tracing, metrics, exports.

The paper's core claim is about *where time and bytes go* — n round
trips under naive RMI collapsing into one batched exchange.  This
package makes that observable on every transport, not just the
simulator:

- **trace-context propagation** — an optional ``trace_id``/``span_id``/
  ``parent_id`` triple rides :class:`~repro.rmi.protocol.CallRequest`
  (wire-compatible when absent), so one batch flush produces a single
  connected span tree spanning client and server;
- **span model** (:mod:`repro.obs.tracer`) — a lock-cheap per-process
  :class:`Tracer` with head sampling; retry attempts, shed requests and
  injected faults force-sample so failures are never invisible;
- **unified metrics** (:mod:`repro.obs.metrics`) — a
  :class:`MetricsRegistry` of named counters/gauges/histograms that the
  existing fragmented telemetry (``TrafficStats``, ``ServerMetrics``,
  plan-cache, dedup, buffer-pool) publishes into via
  :mod:`repro.obs.bridge`, with one text exposition and mergeable
  per-process dumps;
- **export and rendering** (:mod:`repro.obs.export`) — JSON-lines trace
  files, span-tree and message-chart renderers, and a well-formedness
  checker behind ``python -m repro.obs``;
- **live introspection** (:mod:`repro.obs.live`) — a JSON-over-frames
  admin endpoint per serving process (health, live metrics, the
  tracer's always-on :class:`FlightRecorder`, a slow log with trace-id
  exemplars) plus cluster aggregation across supervised shards, polled
  by ``python -m repro.obs top|health|snapshot``.

Instrumented hot paths guard on :func:`current_tracer` returning
``None``; with no tracer installed the per-request overhead is one
module-global read.
"""

from repro.obs.context import TraceContext, current_span
from repro.obs.export import (
    build_trace_trees,
    check_spans,
    read_jsonl,
    render_message_chart,
    render_span_tree,
    write_jsonl,
)
from repro.obs.live import (
    AdminClient,
    AdminError,
    AdminServer,
    admin_request,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsKindError,
    MetricsRegistry,
    percentile,
)
from repro.obs.tracer import (
    FlightRecorder,
    Span,
    Tracer,
    current_tracer,
    install_tracer,
    uninstall_tracer,
)

__all__ = [
    "AdminClient",
    "AdminError",
    "AdminServer",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsKindError",
    "MetricsRegistry",
    "Span",
    "TraceContext",
    "Tracer",
    "admin_request",
    "build_trace_trees",
    "check_spans",
    "current_span",
    "current_tracer",
    "install_tracer",
    "percentile",
    "read_jsonl",
    "render_message_chart",
    "render_span_tree",
    "uninstall_tracer",
    "write_jsonl",
]
