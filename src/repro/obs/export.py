"""Trace export/import, span-tree assembly, rendering, well-formedness.

The JSON-lines format is one span dict per line (see
:meth:`~repro.obs.tracer.Span.to_dict`): ``name``, ``trace_id``,
``span_id``, ``parent_id``, ``start``, ``end``, ``attrs``.  Everything
here operates on those dicts, so traces round-trip through files and
merge across processes by simple concatenation.

:func:`render_span_tree` is the span-level generalization of
``net/trace.py``'s Figure-1 message charts; :func:`render_message_chart`
reproduces the chart itself from ``client.send`` spans, so the paper's
n-pairs-versus-one contrast can be drawn from a trace of any transport.
"""

from __future__ import annotations

import json
from collections import OrderedDict


def write_jsonl(spans, path) -> int:
    """Write spans (Span objects or dicts) as JSON lines; returns count."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            record = span if isinstance(span, dict) else span.to_dict()
            fh.write(json.dumps(record, sort_keys=True))
            fh.write("\n")
            count += 1
    return count


def read_jsonl(path) -> list:
    """Read a JSON-lines trace file back into span dicts."""
    spans = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def _as_dicts(spans) -> list:
    return [s if isinstance(s, dict) else s.to_dict() for s in spans]


class _Node:
    __slots__ = ("span", "children")

    def __init__(self, span):
        self.span = span
        self.children = []


def build_trace_trees(spans) -> "OrderedDict":
    """Group spans by trace and link parents: ``{trace_id: [roots]}``.

    A span whose ``parent_id`` is missing from its trace (e.g. the other
    half ran in a process whose export you don't have) becomes a root,
    so partial traces still render.  Roots and children sort by start
    time.
    """
    spans = _as_dicts(spans)
    by_trace = OrderedDict()
    for span in spans:
        by_trace.setdefault(span["trace_id"], []).append(span)
    trees = OrderedDict()
    for trace_id, members in by_trace.items():
        nodes = {span["span_id"]: _Node(span) for span in members}
        roots = []
        for span in members:
            node = nodes[span["span_id"]]
            parent = nodes.get(span["parent_id"]) if span["parent_id"] else None
            if parent is None or parent is node:
                roots.append(node)
            else:
                parent.children.append(node)
        for node in nodes.values():
            node.children.sort(key=lambda n: n.span["start"])
        roots.sort(key=lambda n: n.span["start"])
        trees[trace_id] = roots
    return trees


#: Span names recorded as deliberate zero-duration point events
#: (``tracer.record(name, now, now)``): markers, not timed operations.
#: The zero-clock-duration check exempts them; a span may also opt out
#: with a truthy ``instant`` attribute.
INSTANT_SPAN_NAMES = frozenset({
    "server.shed",
    "server.dedup",
    "server.plan",
    "fault.injected",
})


def _is_instant(span) -> bool:
    return (span.get("name") in INSTANT_SPAN_NAMES
            or bool(span.get("attrs", {}).get("instant")))


def check_spans(spans, require_names=(), allow_orphans: bool = False) -> list:
    """Well-formedness problems in a span set (empty list = OK).

    Checks: non-empty; unique span ids; ``end > start`` — a negative
    duration means a clock ran backwards, a zero duration on anything
    but a known point event (:data:`INSTANT_SPAN_NAMES`, or an
    ``instant`` attr) means a clock never advanced; every non-empty
    ``parent_id`` resolves to an exported span *in the same trace*;
    every name in *require_names* appears at least once.

    Parent resolution distinguishes two failures: a parent id exported
    under a **different** trace is corruption and always a problem,
    while a parent id found **nowhere** in the export is a
    *cross-process orphan* — the other half ran in a process whose
    export you don't have.  *allow_orphans* tolerates only the latter
    (partial captures are legitimate; corrupted links never are).
    """
    spans = _as_dicts(spans)
    problems = []
    if not spans:
        problems.append("no spans")
        return problems
    seen_ids = set()
    by_trace = {}
    for span in spans:
        span_id = span.get("span_id")
        if span_id in seen_ids:
            problems.append(f"duplicate span id {span_id!r}")
        seen_ids.add(span_id)
        if span.get("end") is None or span["end"] < span["start"]:
            problems.append(
                f"span {span.get('name')!r} ({span_id}) ends before it starts"
            )
        elif span["end"] == span["start"] and not _is_instant(span):
            problems.append(
                f"span {span.get('name')!r} ({span_id}) has a zero-clock "
                "duration (and is not a known instant marker)"
            )
        by_trace.setdefault(span.get("trace_id"), set()).add(span_id)
    for span in spans:
        parent = span.get("parent_id")
        if not parent or parent in by_trace.get(span.get("trace_id"), ()):
            continue
        if parent in seen_ids:
            problems.append(
                f"span {span.get('name')!r} ({span.get('span_id')}) has "
                f"parent {parent!r} in a different trace"
            )
        elif not allow_orphans:
            problems.append(
                f"span {span.get('name')!r} ({span.get('span_id')}) has "
                f"unresolved parent {parent!r} (cross-process orphan — "
                "pass --allow-orphans for partial captures)"
            )
    names = {span.get("name") for span in spans}
    for required in require_names:
        if required not in names:
            problems.append(f"required span name {required!r} never appears")
    return problems


def _attr_text(attrs) -> str:
    parts = []
    for key in sorted(attrs):
        value = attrs[key]
        if isinstance(value, float):
            value = f"{value:.6g}"
        parts.append(f"{key}={value}")
    return " ".join(parts)


def render_span_tree(spans, max_traces: int = None) -> str:
    """ASCII span trees, one per trace, durations in milliseconds."""
    trees = build_trace_trees(spans)
    lines = []
    for index, (trace_id, roots) in enumerate(trees.items()):
        if max_traces is not None and index >= max_traces:
            lines.append(
                f"... {len(trees) - max_traces} more trace(s) not shown"
            )
            break
        count = sum(_tree_size(root) for root in roots)
        lines.append(f"trace {trace_id} ({count} span{'s' * (count != 1)})")
        base = min(root.span["start"] for root in roots)
        for root in roots:
            _render_node(root, base, "  ", lines)
        lines.append("")
    return "\n".join(lines).rstrip("\n")


def _tree_size(node) -> int:
    return 1 + sum(_tree_size(child) for child in node.children)


def _render_node(node, base, indent, lines) -> None:
    span = node.span
    start_ms = (span["start"] - base) * 1e3
    duration_ms = (span["end"] - span["start"]) * 1e3
    attrs = _attr_text(span.get("attrs", {}))
    suffix = f"  {attrs}" if attrs else ""
    lines.append(
        f"{indent}{span['name']:<18} +{start_ms:8.3f}ms "
        f"{duration_ms:9.3f}ms{suffix}"
    )
    for child in node.children:
        _render_node(child, base, indent + "  ", lines)


def render_message_chart(spans, client: str = "client",
                         server_label: str = "server") -> str:
    """The Figure-1 message chart, drawn from ``client.send`` spans.

    Works on traces from any transport — this is the generalization of
    the sim-only ``NetworkTrace`` chart to anything the tracer saw.
    """
    spans = [
        s for s in _as_dicts(spans)
        if s["name"] == "client.send" and s.get("end") is not None
    ]
    spans.sort(key=lambda s: s["start"])
    width = 34
    lines = [
        f"{client:<12}{'':{width}}{server_label}",
        f"{'|':<12}{'':{width}}|",
    ]
    base = spans[0]["start"] if spans else 0.0
    total = 0
    for index, span in enumerate(spans, start=1):
        attrs = span.get("attrs", {})
        up = attrs.get("bytes_up", "?")
        down = attrs.get("bytes_down", "?")
        if isinstance(up, int):
            total += up
        if isinstance(down, int):
            total += down
        stamp = f"t={(span['start'] - base) * 1e3:8.3f}ms"
        arrow = "-" * (width - 2)
        lines.append(f"{'|':<12}{arrow}> [{index}] {up}B {stamp}")
        lines.append(
            f"{'|':<11}<{arrow}- {down}B "
            f"(+{(span['end'] - span['start']) * 1e3:.3f}ms)"
        )
    lines.append(
        f"{'':12}{len(spans)} network round trip(s), {total} bytes total"
    )
    return "\n".join(lines)
