"""The live introspection plane: a per-process admin endpoint.

Every telemetry artifact before this module was post-mortem — metrics
dumped at shutdown, traces visible once exported.  An
:class:`AdminServer` makes a serving process observable *while it runs
and degrades*: a side-port endpoint speaking **JSON over the existing
length-prefixed frames** (:mod:`repro.wire.framing` via the threaded
:class:`~repro.net.tcp.TcpListener` — the RMI wire format itself stays
frozen; admin frames carry plain JSON, never TLV).

Protocol: one request frame containing ``{"cmd": <name>, ...params}``,
one response frame containing ``{"ok": true, ...}`` or ``{"ok": false,
"error": ...}``.  Connections may issue any number of request/response
pairs.  Commands every endpoint serves:

- ``health``   — cheap liveness/readiness (no registry evaluation);
- ``metrics``  — a live :class:`~repro.obs.metrics.MetricsRegistry`
  dump (mergeable, same shape as the shutdown files);
- ``flight``   — the tracer's :class:`~repro.obs.tracer.FlightRecorder`
  snapshot: recently completed spans, the currently in-flight set with
  elapsed times, and the slow log;
- ``slow``     — just the slow log (trace-id exemplars included);
- ``snapshot`` — all of the above in one frame (what pollers use, so a
  poll is one round trip per process).

A worker builds its endpoint with :func:`worker_commands`; the
supervisor aggregates its shards with :func:`cluster_commands` (per
worker: one ``snapshot`` poll, merged through
``MetricsRegistry.merge``).  ``python -m repro.obs top|health|snapshot``
is the client.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time

from repro.net.tcp import TcpListener, parse_tcp_address
from repro.obs.metrics import MetricsRegistry
from repro.wire.framing import read_frame, write_frame

#: Seconds an admin client waits for one poll round trip.
DEFAULT_POLL_TIMEOUT = 5.0


class AdminError(RuntimeError):
    """An admin poll failed: unreachable endpoint, bad frame, or an
    ``ok: false`` response."""


# ---------------------------------------------------------------------------
# server side
# ---------------------------------------------------------------------------


class AdminServer:
    """JSON-over-frames command endpoint on a side port.

    *commands* maps command names to ``handler(params: dict) -> dict``
    callables; the returned dict is sent with ``ok: true`` added.  A
    handler exception becomes an ``ok: false`` response (the endpoint
    never drops a connection over one bad command).  Serving reuses the
    threaded :class:`~repro.net.tcp.TcpListener` — framing, connection
    lifecycle and drain semantics are the ones the RMI transport
    already proved.
    """

    def __init__(self, commands: dict, host: str = "127.0.0.1",
                 port: int = 0):
        self._commands = dict(commands)
        self._lock = threading.Lock()
        self._requests = 0
        self._errors = 0
        self._started_at = time.monotonic()
        self._listener = TcpListener(f"tcp://{host}:{port}", self._handle)

    @property
    def address(self) -> str:
        """The admin endpoint's ``tcp://host:port`` address."""
        return self._listener.address

    @property
    def requests(self) -> int:
        """Admin requests served (kept out of the metrics registry so
        polling never perturbs the books it reads)."""
        with self._lock:
            return self._requests

    @property
    def uptime(self) -> float:
        return time.monotonic() - self._started_at

    def _handle(self, payload) -> bytes:
        with self._lock:
            self._requests += 1
        try:
            request = json.loads(bytes(payload))
            if not isinstance(request, dict):
                raise ValueError("admin request must be a JSON object")
            cmd = request.get("cmd")
            handler = self._commands.get(cmd)
            if handler is None:
                known = ", ".join(sorted(self._commands))
                raise ValueError(f"unknown command {cmd!r} (have: {known})")
            params = {k: v for k, v in request.items() if k != "cmd"}
            response = dict(handler(params))
            response["ok"] = True
        except Exception as exc:  # noqa: BLE001 - every failure answers
            with self._lock:
                self._errors += 1
            response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        return json.dumps(response, sort_keys=True, default=str).encode()

    def close(self) -> None:
        """Stop serving admin requests, idempotently."""
        self._listener.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


def worker_commands(*, registry=None, tracer=None, health=None) -> dict:
    """The standard command set for one serving process.

    *registry* feeds ``metrics`` (an empty registry is served when
    ``None``); *tracer* feeds ``flight``/``slow`` through its flight
    recorder; *health* is a zero-argument callable returning extra
    health fields (``ready`` most importantly — default ``True``).
    """
    started = time.monotonic()

    def cmd_health(params) -> dict:
        payload = {
            "role": "worker",
            "pid": os.getpid(),
            "ready": True,
            "uptime_s": round(time.monotonic() - started, 3),
        }
        if health is not None:
            payload.update(health())
        return payload

    def cmd_metrics(params) -> dict:
        if registry is None:
            return {"metrics": MetricsRegistry().to_dict()}
        return {"metrics": registry.to_dict()}

    def _flight_snapshot() -> dict:
        flight = tracer.flight if tracer is not None else None
        if flight is None:
            return {"capacity": 0, "slow_threshold_s": 0.0,
                    "completed": [], "inflight": [], "slow": []}
        return flight.snapshot(tracer.now())

    def cmd_flight(params) -> dict:
        return {"flight": _flight_snapshot()}

    def cmd_slow(params) -> dict:
        return {"slow": _flight_snapshot()["slow"]}

    def cmd_snapshot(params) -> dict:
        return {
            "health": cmd_health(params),
            "metrics": cmd_metrics(params)["metrics"],
            "flight": _flight_snapshot(),
        }

    return {
        "health": cmd_health,
        "metrics": cmd_metrics,
        "flight": cmd_flight,
        "slow": cmd_slow,
        "snapshot": cmd_snapshot,
    }


def cluster_commands(shard_addresses, *, health=None,
                     poll_timeout: float = DEFAULT_POLL_TIMEOUT) -> dict:
    """The supervisor's command set: aggregate over worker endpoints.

    *shard_addresses* is a zero-argument callable returning the current
    list of worker admin addresses (a callable so a future
    restart-on-death supervisor can rotate members without rebuilding
    the endpoint).  Each aggregation polls every shard with one
    ``snapshot`` request and merges the registries through
    ``MetricsRegistry.merge``; a shard that cannot be polled is
    reported per-shard and counted in the merged ``procs.poll_errors``
    counter instead of failing the whole view.
    """
    started = time.monotonic()

    def _poll_all() -> tuple:
        shards, errors = [], []
        for address in shard_addresses():
            try:
                reply = admin_request(address, "snapshot",
                                      timeout=poll_timeout)
                shards.append(dict(reply, address=address))
            except Exception as exc:  # noqa: BLE001 - degraded, not dead
                errors.append({"address": address,
                               "error": f"{type(exc).__name__}: {exc}"})
        return shards, errors

    def _merge(shards, errors) -> dict:
        merged = MetricsRegistry()
        merged.counter("procs.poll_errors").inc(len(errors))
        for shard in shards:
            merged.merge(shard.get("metrics", {}))
        return merged.to_dict()

    def cmd_health(params) -> dict:
        shards, errors = [], []
        for address in shard_addresses():
            try:
                reply = admin_request(address, "health",
                                      timeout=poll_timeout)
                shards.append(dict(reply, address=address))
            except Exception as exc:  # noqa: BLE001
                errors.append({"address": address,
                               "error": f"{type(exc).__name__}: {exc}"})
        payload = {
            "role": "supervisor",
            "pid": os.getpid(),
            "procs": len(shard_addresses()),
            "uptime_s": round(time.monotonic() - started, 3),
            "ready": bool(shards) and not errors
            and all(s.get("ready") for s in shards),
            "shards": shards,
            "shard_errors": errors,
        }
        if health is not None:
            payload.update(health())
        return payload

    def cmd_snapshot(params) -> dict:
        shards, errors = _poll_all()
        return {
            "health": cmd_health(params),
            "shards": shards,
            "shard_errors": errors,
            "merged": _merge(shards, errors),
        }

    def cmd_metrics(params) -> dict:
        shards, errors = _poll_all()
        return {"metrics": _merge(shards, errors),
                "shard_errors": errors}

    def cmd_flight(params) -> dict:
        shards, errors = _poll_all()
        return {
            "flight": {shard["address"]: shard.get("flight", {})
                       for shard in shards},
            "shard_errors": errors,
        }

    def cmd_slow(params) -> dict:
        shards, errors = _poll_all()
        slow = []
        for shard in shards:
            for entry in shard.get("flight", {}).get("slow", ()):
                slow.append(dict(entry, address=shard["address"]))
        return {"slow": slow, "shard_errors": errors}

    return {
        "health": cmd_health,
        "metrics": cmd_metrics,
        "flight": cmd_flight,
        "slow": cmd_slow,
        "snapshot": cmd_snapshot,
    }


# ---------------------------------------------------------------------------
# client side
# ---------------------------------------------------------------------------


class AdminClient:
    """A persistent connection to one admin endpoint.

    Pollers keep one of these open (1 Hz polling should not pay a TCP
    handshake per tick); one-shot callers use :func:`admin_request`.
    Not thread-safe — one poller, one client.
    """

    def __init__(self, address: str, timeout: float = DEFAULT_POLL_TIMEOUT):
        host, port = parse_tcp_address(address)
        self._address = address
        try:
            self._sock = socket.create_connection((host, port),
                                                  timeout=timeout)
            self._sock.settimeout(timeout)
        except OSError as exc:
            raise AdminError(
                f"cannot reach admin endpoint {address!r}: {exc}"
            ) from exc

    @property
    def address(self) -> str:
        return self._address

    def request(self, cmd: str, **params) -> dict:
        """One command round trip; the decoded ``ok: true`` payload.

        Raises :class:`AdminError` on transport failure, undecodable
        response, or an ``ok: false`` reply.
        """
        message = dict(params, cmd=cmd)
        try:
            write_frame(self._sock, json.dumps(message).encode())
            response = read_frame(self._sock)
        except AdminError:
            raise
        except Exception as exc:  # noqa: BLE001 - any transport failure
            raise AdminError(
                f"admin poll of {self._address!r} failed: {exc}"
            ) from exc
        if response == b"":
            raise AdminError(
                f"admin endpoint {self._address!r} closed the connection"
            )
        try:
            reply = json.loads(response)
        except ValueError as exc:
            raise AdminError(
                f"undecodable admin reply from {self._address!r}: {exc}"
            ) from exc
        if not isinstance(reply, dict) or not reply.get("ok"):
            error = reply.get("error") if isinstance(reply, dict) else reply
            raise AdminError(
                f"admin command {cmd!r} failed at {self._address!r}: {error}"
            )
        return reply

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


def admin_request(address: str, cmd: str,
                  timeout: float = DEFAULT_POLL_TIMEOUT, **params) -> dict:
    """One-shot admin poll: connect, issue *cmd*, disconnect."""
    with AdminClient(address, timeout=timeout) as client:
        return client.request(cmd, **params)
