"""Trace-context propagation primitives.

A :class:`TraceContext` is what crosses the wire: the sending span's
identity, carried in the three optional ``CallRequest`` fields.  Head
sampling happens where a trace's root span is created (see
:class:`~repro.obs.tracer.Tracer`); a request is only stamped when its
trace sampled, so the presence of ``trace_id`` on the wire *is* the
sampling decision — a server that receives a context always records.

The ambient span is a :class:`contextvars.ContextVar`, so parenthood
flows through both threads (each transport worker has its own context)
and asyncio tasks (the aio client's coroutines) without any signature
changes along the dispatch chain.
"""

from __future__ import annotations

import contextvars
from dataclasses import dataclass


@dataclass(frozen=True)
class TraceContext:
    """One span's wire identity: enough to parent the far side's spans."""

    trace_id: str
    span_id: str
    parent_id: str = ""


#: The span currently active on this thread/task (or None).
_current_span = contextvars.ContextVar("repro_obs_span", default=None)


def current_span():
    """The ambient span new spans parent under, or ``None``."""
    return _current_span.get()


def _activate(span):
    """Make *span* ambient; returns the token for :func:`_deactivate`."""
    return _current_span.set(span)


def _deactivate(token) -> None:
    _current_span.reset(token)
