"""Cross-layer hand-off points between transports and the dispatch core.

The transport handler contract is ``handler(bytes) -> bytes`` — there is
nowhere in the signature to carry "this request waited 3ms for a
worker".  A transport that knows the queue wait (the asyncio listener's
worker pool) deposits it here, on the worker thread, immediately before
invoking the handler; :meth:`~repro.rmi.dispatch.RMICore.handle` takes
it (consuming it) and attaches it to the request's server span.

Thread-local, set-then-take within one handler invocation on one
thread, so values can never leak between requests.
"""

from __future__ import annotations

import threading

_tls = threading.local()


def note_queue_wait(seconds: float) -> None:
    """Deposit the admitted→started wait for the request about to run."""
    _tls.queue_wait = seconds


def take_queue_wait():
    """Consume the deposited wait (``None`` when no transport deposited
    one — the threaded and simulated transports have no queue)."""
    wait = getattr(_tls, "queue_wait", None)
    _tls.queue_wait = None
    return wait
