"""Command-line driver for the evaluation harness.

Usage::

    python -m repro.bench               # all figures + applicability
    python -m repro.bench fig07 fig12   # selected figures
    python -m repro.bench --list        # what can be regenerated
    python -m repro.bench --ablations   # the beyond-the-paper sweeps
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.experiments import (
    FIGURES,
    run_ablation_identity,
    run_ablation_latency,
    run_applicability,
    run_figure,
    run_model_comparison,
)
from repro.bench.reporting import (
    render_applicability,
    render_experiment,
    summarize_speedups,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        metavar="FIGURE",
        help="figure ids (fig05..fig13); default: all",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available figure ids"
    )
    parser.add_argument(
        "--ablations", action="store_true",
        help="also run the beyond-the-paper ablation sweeps",
    )
    parser.add_argument(
        "--no-chart", action="store_true", help="tables only, no ASCII charts"
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for figure_id in sorted(FIGURES):
            generator, kwargs = FIGURES[figure_id]
            conditions = kwargs.get("conditions")
            print(f"{figure_id}: {generator.__name__} "
                  f"[{getattr(conditions, 'name', '?')}]")
        return 0

    figure_ids = args.figures or sorted(FIGURES)
    unknown = [fid for fid in figure_ids if fid not in FIGURES]
    if unknown:
        print(f"unknown figure ids: {', '.join(unknown)}; "
              f"try --list", file=sys.stderr)
        return 2

    for figure_id in figure_ids:
        experiment = run_figure(figure_id)
        print(render_experiment(experiment, chart=not args.no_chart))
        print(summarize_speedups(experiment))
        print()

    if not args.figures:
        print("== sec5.1: applicability (round trips) ==")
        print(render_applicability(run_applicability()))
        print()

    if args.ablations:
        for experiment in (
            run_ablation_latency(),
            run_ablation_identity(),
            run_model_comparison(),
        ):
            print(render_experiment(experiment, chart=False))
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
