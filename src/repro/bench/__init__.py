"""Benchmark harness and per-figure experiment generators."""

from repro.bench.harness import BenchEnv, Experiment, Series, sweep
from repro.bench.experiments import (
    FIGURES,
    run_ablation_identity,
    run_ablation_latency,
    run_baseline_comparison,
    run_all_figures,
    run_applicability,
    run_figure,
    run_file_server,
    run_linked_list,
    run_model_comparison,
    run_noop,
    run_simulation,
)
from repro.bench.reporting import (
    render_applicability,
    render_chart,
    render_experiment,
    render_table,
    summarize_speedups,
)

__all__ = [
    "BenchEnv",
    "Experiment",
    "FIGURES",
    "render_applicability",
    "render_chart",
    "render_experiment",
    "render_table",
    "run_ablation_identity",
    "run_ablation_latency",
    "run_all_figures",
    "run_baseline_comparison",
    "run_applicability",
    "run_figure",
    "run_file_server",
    "run_linked_list",
    "run_model_comparison",
    "run_noop",
    "run_simulation",
    "Series",
    "summarize_speedups",
    "sweep",
]
