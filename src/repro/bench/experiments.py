"""One generator per evaluation figure of the paper (§5.2-§5.4).

Each ``run_*`` function returns an :class:`~repro.bench.harness.Experiment`
with ``RMI`` and ``BRMI`` series, ready for
:func:`repro.bench.reporting.render_experiment`.  Config 1 is the ``LAN``
preset, Config 2 the ``WIRELESS`` preset; the figure id picks between
them.
"""

from __future__ import annotations

from typing import Dict

from repro.apps import (
    fetch_files_brmi,
    fetch_files_rmi,
    list_directory_brmi,
    list_directory_rmi,
    purchase_session_brmi,
    purchase_session_rmi,
    run_noop_brmi,
    run_noop_rmi,
    run_simulation_brmi,
    run_simulation_rmi,
    translate_brmi,
    translate_rmi,
    traverse_brmi,
    traverse_brmi_unbatched,
    traverse_rmi,
    Word,
)
from repro.bench.harness import BenchEnv, Experiment, Series, sweep
from repro.model.analytic import CallShape, crossover_calls, predict_brmi_s, predict_rmi_s
from repro.net.conditions import (
    DEFAULT_HOSTS,
    LAN,
    WIRELESS,
    HostCosts,
    NetworkConditions,
    scaled,
)

#: Sweep ranges used by the paper.
NOOP_CALLS = (1, 2, 3, 4, 5)
LIST_HOPS = (1, 2, 3, 4, 5)
SIM_STEPS = (5, 10, 15, 20, 25, 30, 35, 40)
SIM_REPS = 5
FILE_COUNTS = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10)


def _env_factory(conditions: NetworkConditions, hosts: HostCosts = DEFAULT_HOSTS):
    return lambda: BenchEnv(conditions, hosts)


# -- Figures 5/6: no-op micro-benchmark ---------------------------------------


def run_noop(conditions: NetworkConditions = LAN,
             exp_id: str = "fig05") -> Experiment:
    """No-op benchmark: n calls, one BRMI batch (Figures 5 and 6)."""
    series = sweep(
        _env_factory(conditions),
        NOOP_CALLS,
        ("RMI", lambda env, n: env.measure_ms(
            run_noop_rmi, env.lookup("noop"), n)),
        ("BRMI", lambda env, n: env.measure_ms(
            run_noop_brmi, env.lookup("noop"), n)),
    )
    return Experiment(
        exp_id=exp_id,
        title="No-op benchmark",
        xlabel="number of method calls",
        conditions_name=conditions.name,
        series=series,
        notes="RMI grows linearly with call count; BRMI stays near "
        "constant; RMI wins below the crossover batch size.",
    )


# -- Figures 7/8/9: linked-list traversal -------------------------------------


def run_linked_list(conditions: NetworkConditions = LAN,
                    batch_size_one: bool = False,
                    exp_id: str = "fig07") -> Experiment:
    """Linked-list traversal (Figures 7, 8; Figure 9 with size-1 batches)."""
    brmi = traverse_brmi_unbatched if batch_size_one else traverse_brmi
    series = sweep(
        _env_factory(conditions),
        LIST_HOPS,
        ("RMI", lambda env, n: env.measure_ms(
            traverse_rmi, env.lookup("list"), n)),
        ("BRMI", lambda env, n: env.measure_ms(brmi, env.lookup("list"), n)),
    )
    flavor = " (batches of size 1)" if batch_size_one else ""
    return Experiment(
        exp_id=exp_id,
        title=f"Linked list traversal{flavor}",
        xlabel="number of traversals",
        conditions_name=conditions.name,
        series=series,
        notes="BRMI wins even at one traversal: remote returns stay on "
        "the server instead of being marshalled into stubs.",
    )


# -- Figures 10/11: remote simulation -----------------------------------------


def run_simulation(conditions: NetworkConditions = LAN,
                   exp_id: str = "fig10", reps: int = SIM_REPS) -> Experiment:
    """Remote simulation with flush-per-step batches (Figures 10, 11)."""

    def rmi(env, steps):
        stub = env.fresh_simulation("sim-rmi")
        return env.measure_ms(run_simulation_rmi, stub, steps, reps)

    def brmi(env, steps):
        stub = env.fresh_simulation("sim-brmi")
        return env.measure_ms(run_simulation_brmi, stub, steps, reps)

    series = sweep(
        _env_factory(conditions), SIM_STEPS, ("RMI", rmi), ("BRMI", brmi)
    )
    return Experiment(
        exp_id=exp_id,
        title="Remote simulation",
        xlabel="number of simulation steps",
        conditions_name=conditions.name,
        series=series,
        notes="Batch size pinned to one: the gap isolates remote "
        "reference identity — balance() is local under BRMI, a loopback "
        "remote call under RMI.",
    )


# -- Figures 12/13: file server macro benchmark --------------------------------


def run_file_server(conditions: NetworkConditions = LAN,
                    exp_id: str = "fig12") -> Experiment:
    """Request-and-transfer n of 10 files, 100 KB total (Figures 12, 13)."""
    series = sweep(
        _env_factory(conditions),
        FILE_COUNTS,
        ("RMI", lambda env, n: env.measure_ms(
            fetch_files_rmi, env.lookup("fileserver"), n)),
        ("BRMI", lambda env, n: env.measure_ms(
            fetch_files_brmi, env.lookup("fileserver"), n)),
    )
    return Experiment(
        exp_id=exp_id,
        title="Remote file server (macro)",
        xlabel="number of files",
        conditions_name=conditions.name,
        series=series,
        notes="Combines batching and identity: metadata and contents of "
        "all requested files move in bulk.",
    )


# -- §5.1: applicability (round-trip accounting) --------------------------------


def run_applicability(conditions: NetworkConditions = LAN) -> Dict[str, Dict[str, int]]:
    """Round trips per case study, RMI vs BRMI (§5.1's call arithmetic).

    Returns ``{app: {"rmi": n, "brmi": m}}``, counted on the client's
    channel.  The file listing should show ``1 + 4·N`` vs 1.
    """
    counts: Dict[str, Dict[str, int]] = {}

    def count(env: BenchEnv, workload, *args) -> int:
        stats = env.client.stats
        before = stats.requests
        workload(*args)
        return stats.requests - before

    with BenchEnv(conditions) as env:
        stub = env.lookup("fileserver")
        counts["file-listing"] = {
            "rmi": count(env, list_directory_rmi, stub),
            "brmi": count(env, list_directory_brmi, stub),
        }
    with BenchEnv(conditions) as env:
        stub = env.lookup("bank")
        counts["bank"] = {
            "rmi": count(env, purchase_session_rmi, stub, "alice",
                         [10.0, 20.0, 30.0]),
            "brmi": count(env, purchase_session_brmi, stub, "alice",
                          [10.0, 20.0, 30.0]),
        }
    words = [Word(w) for w in ("hello", "world", "remote", "object")]
    with BenchEnv(conditions) as env:
        stub = env.lookup("translator")
        counts["translator"] = {
            "rmi": count(env, translate_rmi, stub, words),
            "brmi": count(env, translate_brmi, stub, words),
        }
    return counts


# -- Ablations -----------------------------------------------------------------


def run_ablation_latency(factors=(0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
                         calls: int = 5) -> Experiment:
    """BRMI speedup as link latency scales (design motivation ablation).

    Batching trades CPU for round trips, so its advantage must grow with
    latency — the 'latency lags bandwidth' argument the paper leans on.
    """
    rmi = Series("RMI")
    brmi = Series("BRMI")
    for factor in factors:
        conditions = scaled(LAN, latency_factor=factor)
        with BenchEnv(conditions) as env:
            rmi.add(factor, env.measure_ms(
                run_noop_rmi, env.lookup("noop"), calls))
        with BenchEnv(conditions) as env:
            brmi.add(factor, env.measure_ms(
                run_noop_brmi, env.lookup("noop"), calls))
    return Experiment(
        exp_id="ablation-latency",
        title=f"Latency sweep (noop x{calls})",
        xlabel="latency scale factor (x LAN)",
        conditions_name="lan-scaled",
        series=[rmi, brmi],
        notes="The RMI/BRMI gap widens with latency.",
    )


def run_ablation_identity(steps: int = 20, reps: int = SIM_REPS) -> Experiment:
    """Isolate identity preservation by varying loopback dispatch cost.

    The simulation benchmark's RMI cost includes one loopback middleware
    round per balance() call.  Scaling the host-side charges shows that
    BRMI's time is insensitive (its balance() calls are local) while
    RMI's scales — the §4.4 claim in ablation form.
    """
    factors = (0.0, 0.5, 1.0, 2.0, 4.0)
    rmi = Series("RMI")
    brmi = Series("BRMI")
    for factor in factors:
        hosts = HostCosts(
            request_overhead_s=DEFAULT_HOSTS.request_overhead_s * factor,
            dispatch_overhead_s=DEFAULT_HOSTS.dispatch_overhead_s * factor,
            per_byte_cpu_s=DEFAULT_HOSTS.per_byte_cpu_s,
            charges=dict(DEFAULT_HOSTS.charges),
        )
        with BenchEnv(LAN, hosts) as env:
            stub = env.fresh_simulation("sim-rmi")
            rmi.add(factor, env.measure_ms(
                run_simulation_rmi, stub, steps, reps))
        with BenchEnv(LAN, hosts) as env:
            stub = env.fresh_simulation("sim-brmi")
            brmi.add(factor, env.measure_ms(
                run_simulation_brmi, stub, steps, reps))
    return Experiment(
        exp_id="ablation-identity",
        title=f"Identity preservation (simulation, {steps} steps)",
        xlabel="middleware dispatch cost scale factor",
        conditions_name=LAN.name,
        series=[rmi, brmi],
        notes="RMI pays the middleware per balance() loopback call; "
        "BRMI does not.",
    )


def run_baseline_comparison(conditions: NetworkConditions = LAN,
                            workload: str = "list") -> Experiment:
    """RMI vs naive (implicit-style) aggregation vs BRMI.

    The paper's implicit-batching comparison made measurable: on the
    no-op workload the naive aggregator matches BRMI (everything is a
    value call); on the linked-list traversal it degenerates to RMI
    (every remote return forces materialization) while BRMI stays flat.
    """
    from repro.baselines.naive import run_noop_naive, traverse_naive

    if workload == "noop":
        xs = NOOP_CALLS
        runners = (
            ("RMI", lambda env, n: env.measure_ms(
                run_noop_rmi, env.lookup("noop"), n)),
            ("naive", lambda env, n: env.measure_ms(
                run_noop_naive, env.lookup("noop"), n)),
            ("BRMI", lambda env, n: env.measure_ms(
                run_noop_brmi, env.lookup("noop"), n)),
        )
        xlabel = "number of method calls"
    elif workload == "list":
        xs = LIST_HOPS
        runners = (
            ("RMI", lambda env, n: env.measure_ms(
                traverse_rmi, env.lookup("list"), n)),
            ("naive", lambda env, n: env.measure_ms(
                traverse_naive, env.lookup("list"), n)),
            ("BRMI", lambda env, n: env.measure_ms(
                traverse_brmi, env.lookup("list"), n)),
        )
        xlabel = "number of traversals"
    else:
        raise ValueError(f"unknown workload {workload!r}; noop or list")

    series = sweep(_env_factory(conditions), xs, *runners)
    return Experiment(
        exp_id=f"ablation-baseline-{workload}",
        title=f"Explicit vs naive aggregation ({workload})",
        xlabel=xlabel,
        conditions_name=conditions.name,
        series=series,
        notes="The naive aggregator models implicit batching's limits: "
        "remote returns force materialization, so it tracks BRMI on "
        "value-only workloads and RMI on reference-chasing ones.",
    )


def run_model_comparison(conditions: NetworkConditions = LAN) -> Experiment:
    """Analytic model vs simulation for the no-op benchmark.

    Feeds the model the byte profile observed on the wire, then compares
    predictions with simulated measurements point by point.
    """
    simulated_rmi = Series("simulated RMI")
    simulated_brmi = Series("simulated BRMI")
    model_rmi = Series("model RMI")
    model_brmi = Series("model BRMI")
    for n in NOOP_CALLS:
        with BenchEnv(conditions) as env:
            stub = env.lookup("noop")
            env.client.stats.reset()
            ms = env.measure_ms(run_noop_rmi, stub, n)
            snap = env.client.stats.snapshot()
            simulated_rmi.add(n, ms)
            rmi_shape = CallShape(
                request_bytes=snap.bytes_sent // max(snap.requests, 1),
                response_bytes=snap.bytes_received // max(snap.requests, 1),
            )
        with BenchEnv(conditions) as env:
            stub = env.lookup("noop")
            env.client.stats.reset()
            ms = env.measure_ms(run_noop_brmi, stub, n)
            snap = env.client.stats.snapshot()
            simulated_brmi.add(n, ms)
            brmi_shape = CallShape(
                batched_request_bytes=max(
                    (snap.bytes_sent - 120) // n, 0),
                batched_response_bytes=max(
                    (snap.bytes_received - 120) // n, 0),
            )
        model_rmi.add(n, predict_rmi_s(conditions, DEFAULT_HOSTS, n,
                                       rmi_shape) * 1e3)
        model_brmi.add(n, predict_brmi_s(conditions, DEFAULT_HOSTS, n,
                                         brmi_shape) * 1e3)
    return Experiment(
        exp_id="ablation-model",
        title="Analytic model vs simulation (no-op)",
        xlabel="number of method calls",
        conditions_name=conditions.name,
        series=[simulated_rmi, model_rmi, simulated_brmi, model_brmi],
        notes=f"Model crossover at n="
        f"{crossover_calls(conditions, DEFAULT_HOSTS)} calls.",
    )


#: Figure id → (generator, kwargs); the complete reproduction index.
FIGURES = {
    "fig05": (run_noop, {"conditions": LAN, "exp_id": "fig05"}),
    "fig06": (run_noop, {"conditions": WIRELESS, "exp_id": "fig06"}),
    "fig07": (run_linked_list, {"conditions": LAN, "exp_id": "fig07"}),
    "fig08": (run_linked_list, {"conditions": WIRELESS, "exp_id": "fig08"}),
    "fig09": (run_linked_list, {"conditions": LAN, "batch_size_one": True,
                                "exp_id": "fig09"}),
    "fig10": (run_simulation, {"conditions": LAN, "exp_id": "fig10"}),
    "fig11": (run_simulation, {"conditions": WIRELESS, "exp_id": "fig11"}),
    "fig12": (run_file_server, {"conditions": LAN, "exp_id": "fig12"}),
    "fig13": (run_file_server, {"conditions": WIRELESS, "exp_id": "fig13"}),
}


def run_figure(figure_id: str) -> Experiment:
    """Regenerate one paper figure by id (``fig05`` ... ``fig13``)."""
    try:
        generator, kwargs = FIGURES[figure_id]
    except KeyError:
        raise KeyError(
            f"unknown figure {figure_id!r}; choose from {sorted(FIGURES)}"
        ) from None
    return generator(**kwargs)


def run_all_figures() -> Dict[str, Experiment]:
    """Regenerate every evaluation figure; keyed by figure id."""
    return {figure_id: run_figure(figure_id) for figure_id in sorted(FIGURES)}
