"""Rendering experiments as ASCII tables and charts.

The paper reports line charts; a terminal reproduction prints the same
series as a table (exact numbers) plus a rough ASCII plot (shape at a
glance), which is what EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Dict

from repro.bench.harness import Experiment

_CHART_WIDTH = 46
_MARKS = "*o+x#@"


def render_table(experiment: Experiment) -> str:
    """The experiment's series as an aligned table."""
    headers = [experiment.xlabel] + [s.name for s in experiment.series]
    xs = experiment.series[0].xs() if experiment.series else []
    rows = []
    for x in xs:
        row = [_fmt(x)]
        for series in experiment.series:
            row.append(_fmt(series.at(x)))
        rows.append(row)
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in rows)) if rows
        else len(headers[col])
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_chart(experiment: Experiment) -> str:
    """A rough ASCII chart: one row per x, bars in milliseconds."""
    if not experiment.series:
        return "(no data)"
    peak = max(
        (ms for series in experiment.series for _x, ms in series.points),
        default=0.0,
    )
    if peak <= 0:
        return "(all-zero data)"
    lines = []
    xs = experiment.series[0].xs()
    for x in xs:
        for mark, series in zip(_MARKS, experiment.series):
            ms = series.at(x)
            bar = mark * max(1, round(ms / peak * _CHART_WIDTH))
            lines.append(
                f"{_fmt(x):>6} {series.name:>5} |{bar:<{_CHART_WIDTH}}| "
                f"{ms:.3f} ms"
            )
        lines.append("")
    legend = "   ".join(
        f"{mark}={series.name}"
        for mark, series in zip(_MARKS, experiment.series)
    )
    lines.append(legend)
    return "\n".join(lines)


def render_experiment(experiment: Experiment, chart: bool = True) -> str:
    """Full report block for one experiment."""
    header = (
        f"== {experiment.exp_id}: {experiment.title} "
        f"[{experiment.conditions_name}] =="
    )
    parts = [header, render_table(experiment)]
    if chart:
        parts.append("")
        parts.append(render_chart(experiment))
    if experiment.notes:
        parts.append("")
        parts.append(f"note: {experiment.notes}")
    return "\n".join(parts)


def render_applicability(counts: Dict[str, Dict[str, int]]) -> str:
    """Round-trip table for the §5.1 applicability study."""
    lines = [
        f"{'case study':<16}{'RMI round trips':>18}{'BRMI round trips':>19}",
        "-" * 53,
    ]
    for app in sorted(counts):
        row = counts[app]
        lines.append(f"{app:<16}{row['rmi']:>18}{row['brmi']:>19}")
    return "\n".join(lines)


def summarize_speedups(experiment: Experiment, baseline: str = "RMI",
                       contender: str = "BRMI") -> str:
    """One-line min/max speedup summary for an experiment."""
    xs = experiment.series_named(baseline).xs()
    ratios = [experiment.ratio(baseline, contender, x) for x in xs]
    return (
        f"{experiment.exp_id}: {contender} speedup over {baseline} "
        f"ranges {min(ratios):.2f}x (x={xs[ratios.index(min(ratios))]}) to "
        f"{max(ratios):.2f}x (x={xs[ratios.index(max(ratios))]})"
    )


def _fmt(value) -> str:
    if isinstance(value, float) and value != int(value):
        return f"{value:.3f}"
    return str(int(value) if isinstance(value, float) else value)
