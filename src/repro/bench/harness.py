"""Benchmark harness: deterministic virtual-time measurement.

Each experiment builds a fresh simulated testbed (server + apps + client)
under the requested :class:`~repro.net.conditions.NetworkConditions`,
runs the RMI and BRMI client workloads, and reads elapsed *virtual*
milliseconds off the network's clock — the deterministic substitute for
the paper's wall-clock averaging over 5000-10000 repetitions (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Tuple

from repro.apps import (
    CreditManagerImpl,
    NoOpImpl,
    SimulationImpl,
    TranslatorImpl,
    build_list,
    make_directory,
)
from repro.net.clock import Stopwatch
from repro.net.conditions import DEFAULT_HOSTS, HostCosts, NetworkConditions
from repro.net.sim import SimNetwork
from repro.rmi.client import RMIClient
from repro.rmi.server import RMIServer

#: Address every benchmark server listens at.
SERVER_ADDRESS = "sim://server:1099"

#: Macro-benchmark directory parameters (§5.4): 10 files, 100 KB total.
MACRO_NUM_FILES = 10
MACRO_TOTAL_BYTES = 100_000

#: Linked list long enough for every traversal depth swept.
LIST_LENGTH = 64


@dataclass
class Series:
    """One labelled curve: (x, milliseconds) points."""

    name: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, ms: float) -> None:
        self.points.append((x, ms))

    def xs(self) -> List[float]:
        return [x for x, _ in self.points]

    def values(self) -> List[float]:
        return [ms for _, ms in self.points]

    def at(self, x: float) -> float:
        for px, ms in self.points:
            if px == x:
                return ms
        raise KeyError(f"no point at x={x} in series {self.name!r}")


@dataclass
class Experiment:
    """One reproduced figure: metadata plus its series."""

    exp_id: str
    title: str
    xlabel: str
    conditions_name: str
    series: List[Series] = field(default_factory=list)
    ylabel: str = "milliseconds (virtual)"
    notes: str = ""

    def series_named(self, name: str) -> Series:
        for series in self.series:
            if series.name == name:
                return series
        raise KeyError(f"no series named {name!r} in {self.exp_id}")

    def ratio(self, numerator: str, denominator: str, x: float) -> float:
        """Speedup of one series over another at a given x."""
        return self.series_named(numerator).at(x) / self.series_named(
            denominator
        ).at(x)


class BenchEnv:
    """A fresh simulated testbed with every case-study app bound."""

    def __init__(self, conditions: NetworkConditions,
                 hosts: HostCosts = DEFAULT_HOSTS):
        self.conditions = conditions
        self.network = SimNetwork(conditions=conditions, hosts=hosts)
        self.server = RMIServer(self.network, SERVER_ADDRESS).start()
        self.client = RMIClient(self.network, SERVER_ADDRESS)
        self._bind_apps()

    def _bind_apps(self):
        server = self.server
        server.bind("noop", NoOpImpl())
        server.bind("list", build_list(range(LIST_LENGTH)))
        server.bind("fileserver", make_directory(MACRO_NUM_FILES, MACRO_TOTAL_BYTES))
        server.bind("translator", TranslatorImpl())
        bank = CreditManagerImpl()
        server.bind("bank", bank)
        bank.create_credit_account("alice")

    def fresh_simulation(self, name: str = "simulation"):
        """Bind a brand-new simulation (each run needs clean step state)."""
        self.server.bind(name, SimulationImpl())
        return self.client.lookup(name)

    def lookup(self, name: str):
        return self.client.lookup(name)

    def measure_ms(self, workload: Callable, *args) -> float:
        """Run *workload* and return elapsed virtual milliseconds."""
        watch = Stopwatch(self.network.clock)
        workload(*args)
        return watch.elapsed_ms()

    def measure_with_result(self, workload: Callable, *args):
        """Like :meth:`measure_ms` but also returns the workload result."""
        watch = Stopwatch(self.network.clock)
        result = workload(*args)
        return result, watch.elapsed_ms()

    def close(self) -> None:
        self.client.close()
        self.server.close()
        self.network.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


def sweep(env_factory: Callable[[], BenchEnv], xs, *named_workloads) -> List[Series]:
    """Run labelled workloads across a parameter sweep.

    *named_workloads* are ``(label, fn)`` pairs where ``fn(env, x)`` runs
    one measurement.  Every measurement gets a fresh environment so state
    (clock, caches, server tables) never leaks between points — the
    virtual clock makes this free.
    """
    series = [Series(label) for label, _fn in named_workloads]
    for x in xs:
        for out, (label, fn) in zip(series, named_workloads):
            with env_factory() as env:
                out.add(x, fn(env, x))
    return series
