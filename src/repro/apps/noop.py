"""No-op service: the paper's first micro-benchmark (§5.3, Figures 5-6).

A do-nothing remote method isolates pure middleware overhead: RMI pays
one round trip per call, BRMI pays one per batch.
"""

from __future__ import annotations

import threading

from repro.core import create_batch
from repro.rmi import RemoteInterface, RemoteObject, remote_method


class NoOpService(RemoteInterface):
    """A remote method that takes nothing and returns nothing."""

    @remote_method(parallel_safe=True)
    def noop(self) -> None:
        """Do nothing, remotely."""
        ...


class NoOpImpl(RemoteObject, NoOpService):
    """Counts invocations so tests can verify delivery.

    The counter is locked: ``noop`` is declared ``parallel_safe``, so
    the DAG scheduler may run many of them at once and an unguarded
    ``+=`` would drop counts.
    """

    def __init__(self):
        self.calls = 0
        self._lock = threading.Lock()

    def noop(self) -> None:
        with self._lock:
            self.calls += 1


def run_noop_rmi(stub, calls: int) -> int:
    """Issue *calls* no-ops as individual RMI round trips."""
    for _ in range(calls):
        stub.noop()
    return calls


def run_noop_brmi(stub, calls: int) -> int:
    """Issue *calls* no-ops as a single explicit batch."""
    batch = create_batch(stub)
    futures = [batch.noop() for _ in range(calls)]
    batch.flush()
    for future in futures:
        future.get()  # surfaces any server-side failure
    return calls
