"""No-op service: the paper's first micro-benchmark (§5.3, Figures 5-6).

A do-nothing remote method isolates pure middleware overhead: RMI pays
one round trip per call, BRMI pays one per batch.
"""

from __future__ import annotations

from repro.core import create_batch
from repro.rmi import RemoteInterface, RemoteObject


class NoOpService(RemoteInterface):
    """A remote method that takes nothing and returns nothing."""

    def noop(self) -> None:
        """Do nothing, remotely."""
        ...


class NoOpImpl(RemoteObject, NoOpService):
    """Counts invocations so tests can verify delivery."""

    def __init__(self):
        self.calls = 0

    def noop(self) -> None:
        self.calls += 1


def run_noop_rmi(stub, calls: int) -> int:
    """Issue *calls* no-ops as individual RMI round trips."""
    for _ in range(calls):
        stub.noop()
    return calls


def run_noop_brmi(stub, calls: int) -> int:
    """Issue *calls* no-ops as a single explicit batch."""
    batch = create_batch(stub)
    futures = [batch.noop() for _ in range(calls)]
    batch.flush()
    for future in futures:
        future.get()  # surfaces any server-side failure
    return calls
