"""Remote file server: the running example and macro benchmark.

Reimplements the third-party RMI application of §5.1/§5.4 (after Pitt &
McNiff): a hierarchical view of a remote file system.  Listing a
directory costs ``1 + 4·N`` RMI round trips (one ``list_files`` plus
name/is-directory/mtime/length per file); with a BRMI cursor the whole
listing is a single round trip.

The backing store is an in-memory file system so benchmark runs never
touch the disk — the paper likewise preloads files into memory "to avoid
disk access tainting the results" (§5.4).
"""

from __future__ import annotations

import random
import threading
from typing import List

from repro.core import create_batch
from repro.rmi import RemoteInterface, RemoteObject, remote_method
from repro.wire.registry import register_exception


@register_exception
class AccessDeniedError(Exception):
    """A file refuses metadata/content access (drives the §3.3 examples)."""


class RemoteFile(RemoteInterface):
    """One file or directory on the remote file system.

    Every read path is declared ``parallel_safe`` for the DAG scheduler:
    the facade cache is the only shared mutable state they touch and it
    has its own lock.  ``delete`` mutates the tree and stays serial.
    """

    @remote_method(parallel_safe=True)
    def get_name(self) -> str:
        """Base name of this entry."""
        ...

    @remote_method(parallel_safe=True)
    def is_directory(self) -> bool:
        """Whether this entry is a directory."""
        ...

    @remote_method(parallel_safe=True)
    def last_modified(self) -> int:
        """Modification time (epoch seconds)."""
        ...

    @remote_method(parallel_safe=True)
    def length(self) -> int:
        """Content size in bytes (0 for directories)."""
        ...

    @remote_method(parallel_safe=True)
    def read_contents(self) -> bytes:
        """The file's bytes; AccessDeniedError if restricted."""
        ...

    @remote_method(parallel_safe=True)
    def get_file(self, name: str) -> "RemoteFile":
        """Child entry by name; FileNotFoundError if absent."""
        ...

    @remote_method(parallel_safe=True)
    def list_files(self) -> List["RemoteFile"]:
        """All children of this directory, in name order."""
        ...

    def delete(self) -> None:
        """Remove this entry from its parent directory."""
        ...


class FileNode:
    """In-memory file-system node (plain data, not remote)."""

    def __init__(self, name, *, directory=False, contents=b"", mtime=0,
                 restricted=False):
        self.name = name
        self.directory = directory
        self.contents = b"" if directory else bytes(contents)
        self.mtime = mtime
        self.restricted = restricted
        self.children = {} if directory else None
        self.parent = None

    def add(self, child: "FileNode") -> "FileNode":
        if not self.directory:
            raise NotADirectoryError(self.name)
        if child.name in self.children:
            raise FileExistsError(child.name)
        child.parent = self
        self.children[child.name] = child
        return child

    def remove(self, name: str) -> None:
        if not self.directory or name not in self.children:
            raise FileNotFoundError(name)
        self.children.pop(name).parent = None


class RemoteFileImpl(RemoteObject, RemoteFile):
    """Remote facade over one :class:`FileNode`.

    One facade per node, cached on the node, so repeated navigation hands
    back the identical remote object (and therefore equal stubs).
    """

    def __init__(self, node: FileNode):
        self._node = node
        node_facade_cache[id(node)] = self

    def get_name(self) -> str:
        return self._node.name

    def is_directory(self) -> bool:
        return self._node.directory

    def last_modified(self) -> int:
        return self._node.mtime

    def length(self) -> int:
        if self._node.restricted:
            raise AccessDeniedError(self._node.name)
        return len(self._node.contents)

    def read_contents(self) -> bytes:
        if self._node.restricted:
            raise AccessDeniedError(self._node.name)
        return self._node.contents

    def get_file(self, name: str) -> "RemoteFile":
        node = self._node
        if not node.directory:
            raise NotADirectoryError(node.name)
        child = node.children.get(name)
        if child is None:
            raise FileNotFoundError(name)
        return _facade(child)

    def list_files(self) -> List["RemoteFile"]:
        node = self._node
        if not node.directory:
            raise NotADirectoryError(node.name)
        return [_facade(node.children[name]) for name in sorted(node.children)]

    def delete(self) -> None:
        node = self._node
        if node.parent is None:
            raise PermissionError("cannot delete the root directory")
        node.parent.remove(node.name)


#: id(node) -> facade; keeps one remote object per file-system node.
node_facade_cache: dict = {}
_facade_lock = threading.Lock()


def _facade(node: FileNode) -> RemoteFileImpl:
    # Locked get-or-create: concurrent cursor elements navigating into
    # the same node must agree on one facade, or remote-reference
    # identity (§4.4) would depend on scheduling.
    with _facade_lock:
        facade = node_facade_cache.get(id(node))
        return facade if facade is not None else RemoteFileImpl(node)


def make_tree(depth: int, fanout: int, files_per_dir: int = 3,
              file_size: int = 512, *, seed: int = 11,
              base_mtime: int = 1_230_000_000) -> RemoteFileImpl:
    """Build a hierarchical directory tree (the §3.1 'hierarchical view').

    Each directory holds *files_per_dir* regular files plus *fanout*
    subdirectories, recursively to *depth* levels.  Deterministic for a
    given seed.
    """
    if depth < 0 or fanout < 0 or files_per_dir < 0 or file_size < 0:
        raise ValueError("tree parameters cannot be negative")
    rng = random.Random(seed)
    counter = [0]

    def build(name, level):
        node = FileNode(name, directory=True,
                        mtime=base_mtime + counter[0])
        counter[0] += 1
        for i in range(files_per_dir):
            node.add(
                FileNode(
                    f"f{i}.dat",
                    contents=bytes(rng.getrandbits(8)
                                   for _ in range(file_size)),
                    mtime=base_mtime + counter[0],
                )
            )
            counter[0] += 1
        if level < depth:
            for i in range(fanout):
                node.add(build(f"d{i}", level + 1))
        return node

    return _facade(build("root", 0))


def walk_tree_rmi(stub) -> list:
    """Recursive listing over plain RMI: one call per entry attribute."""
    entries = []
    for child in stub.list_files():
        path = child.get_name()
        if child.is_directory():
            entries.append((path, "dir", 0))
            entries.extend(
                (f"{path}/{sub}", kind, size)
                for sub, kind, size in walk_tree_rmi(child)
            )
        else:
            entries.append((path, "file", child.length()))
    return entries


def walk_tree_brmi(stub) -> list:
    """Recursive listing: one batched round trip per directory.

    Each directory's children and their metadata arrive through a single
    cursor batch (vs ``1 + 4·N`` RMI calls); descending into a
    subdirectory costs one ``get_file`` call to materialize its stub.
    Nested cursors are deliberately unsupported (§3.4), so recursion is
    the idiomatic way to batch across hierarchy levels.
    """
    root = create_batch(stub)
    cursor = root.list_files()
    name = cursor.get_name()
    is_dir = cursor.is_directory()
    size = cursor.length()
    root.flush()
    entries = []
    subdir_names = []
    while cursor.next():
        if is_dir.get():
            entries.append((name.get(), "dir", 0))
            subdir_names.append(name.get())
        else:
            entries.append((name.get(), "file", size.get()))
    for sub_name in subdir_names:
        child = stub.get_file(sub_name)
        position = next(
            index for index, entry in enumerate(entries)
            if entry == (sub_name, "dir", 0)
        )
        nested = [
            (f"{sub_name}/{path}", kind, sz)
            for path, kind, sz in walk_tree_brmi(child)
        ]
        entries[position + 1 : position + 1] = nested
    return entries


def make_directory(num_files: int, total_size: int, *, seed: int = 7,
                   base_mtime: int = 1_230_000_000,
                   restricted_names=()) -> RemoteFileImpl:
    """Build the macro-benchmark directory (§5.4).

    *num_files* regular files whose sizes sum to *total_size* bytes
    (paper: 10 files, 100 KB total), with deterministic pseudo-random
    contents.
    """
    if num_files < 1:
        raise ValueError("need at least one file")
    if total_size < num_files:
        raise ValueError("total_size must provide at least 1 byte per file")
    rng = random.Random(seed)
    root = FileNode("root", directory=True, mtime=base_mtime)
    size_each, remainder = divmod(total_size, num_files)
    for index in range(num_files):
        size = size_each + (1 if index < remainder else 0)
        name = f"file{index:02d}.dat"
        root.add(
            FileNode(
                name,
                contents=bytes(rng.getrandbits(8) for _ in range(size)),
                mtime=base_mtime + index,
                restricted=name in restricted_names,
            )
        )
    return _facade(root)


# -- client workloads (used by tests, examples and the benches) ----------


def list_directory_rmi(stub) -> List[tuple]:
    """The paper's RMI listing loop: 1 + 4·N round trips."""
    listing = []
    for entry in stub.list_files():
        listing.append(
            (
                entry.get_name(),
                entry.is_directory(),
                entry.last_modified(),
                entry.length(),
            )
        )
    return listing


def list_directory_brmi(stub) -> List[tuple]:
    """The same listing through a cursor: one round trip."""
    root = create_batch(stub)
    cursor = root.list_files()
    name = cursor.get_name()
    is_dir = cursor.is_directory()
    mtime = cursor.last_modified()
    size = cursor.length()
    root.flush()
    listing = []
    while cursor.next():
        listing.append((name.get(), is_dir.get(), mtime.get(), size.get()))
    return listing


def fetch_files_rmi(stub, count: int) -> int:
    """Macro benchmark, RMI side: metadata plus contents of *count* files."""
    total = 0
    files = stub.list_files()
    for entry in files[:count]:
        entry.get_name()
        entry.last_modified()
        entry.length()
        total += len(entry.read_contents())
    return total


def fetch_files_brmi(stub, count: int) -> int:
    """Macro benchmark, BRMI side: two chained batches (§3.5).

    The first batch lists the directory and bulk-reads metadata through a
    cursor; the chained second batch requests contents for exactly the
    first *count* elements, so only the selected files' bytes cross the
    wire.
    """
    root = create_batch(stub)
    cursor = root.list_files()
    name = cursor.get_name()
    mtime = cursor.last_modified()
    size = cursor.length()
    root.flush_and_continue()
    content_futures = []
    taken = 0
    while taken < count and cursor.next():
        name.get()
        mtime.get()
        size.get()
        content_futures.append(cursor.read_contents())
        taken += 1
    root.flush()
    return sum(len(future.get()) for future in content_futures)
