"""Remote linked list: the paper's traversal micro-benchmark (§5.3,
Figures 7-9).

Traversing ``n`` nodes and reading the last value costs ``n + 1`` RMI
round trips, each of which marshals a remote stub back to the client.
In BRMI the intermediate nodes never cross the network — ``next_node``
returns a batch proxy backed by a server-side table slot (§4.4), so even
unbatched (flush after every call, Figure 9) BRMI avoids the
remote-return marshalling cost.

Note: the paper's interface names this method ``next()``; that name is
reserved for cursor iteration in the batch API, so the reproduction uses
``next_node()``.
"""

from __future__ import annotations

from repro.core import create_batch
from repro.rmi import RemoteInterface, RemoteObject


class RemoteList(RemoteInterface):
    """One node of a remotely-traversable singly linked list."""

    def next_node(self) -> "RemoteList":
        """The following node; raises IndexError past the end."""
        ...

    def get_value(self) -> int:
        """This node's payload."""
        ...


class RemoteListImpl(RemoteObject, RemoteList):
    """Server-side list node."""

    def __init__(self, value: int, tail: "RemoteListImpl" = None):
        self._value = value
        self._tail = tail

    def next_node(self) -> "RemoteList":
        if self._tail is None:
            raise IndexError("end of list")
        return self._tail

    def get_value(self) -> int:
        return self._value


def build_list(values) -> RemoteListImpl:
    """Build a server-side list; returns the head node."""
    values = list(values)
    if not values:
        raise ValueError("a remote list needs at least one node")
    head = None
    for value in reversed(values):
        head = RemoteListImpl(value, head)
    return head


def traverse_rmi(stub, hops: int) -> int:
    """RMI: follow *hops* next-links, then read the value."""
    node = stub
    for _ in range(hops):
        node = node.next_node()
    return node.get_value()


def traverse_brmi(stub, hops: int) -> int:
    """BRMI: the whole traversal in one batch."""
    batch = create_batch(stub)
    node = batch
    for _ in range(hops):
        node = node.next_node()
    value = node.get_value()
    batch.flush()
    return value.get()


def traverse_brmi_unbatched(stub, hops: int) -> int:
    """BRMI with batches of size one (Figure 9).

    Every call is flushed immediately via a chained batch, so there is no
    call aggregation at all — any advantage over RMI comes purely from
    remote results staying on the server.
    """
    batch = create_batch(stub)
    node = batch
    for _ in range(hops):
        node = node.next_node()
        batch.flush_and_continue()
    value = node.get_value()
    batch.flush()
    return value.get()
