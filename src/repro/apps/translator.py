"""Translation service: the paper's third case study (§5.1, after Grosso).

The client sends a serializable ``Word`` and gets a translated ``Word``
back — one round trip per word under RMI.  The case study shows BRMI
handling *runtime-sized* batches: the number of words is only known when
the user types them, and the batch grows dynamically to match.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import create_batch
from repro.rmi import RemoteInterface, RemoteObject
from repro.wire.registry import register_exception, serializable


@register_exception
class UnknownWordError(Exception):
    """The dictionary has no entry for this word/language pair."""


@serializable
@dataclass(frozen=True)
class Word:
    """A word tagged with its language (passed by copy)."""

    text: str
    language: str = "en"


class Translator(RemoteInterface):
    """Word-at-a-time translation service."""

    def translate(self, word: Word) -> Word:
        """Translate into the service's target language."""
        ...

    def target_language(self) -> str:
        """The language translations are produced in."""
        ...


#: A small built-in English→French dictionary for the demo service.
DEFAULT_DICTIONARY = {
    "hello": "bonjour",
    "world": "monde",
    "file": "fichier",
    "remote": "distant",
    "object": "objet",
    "network": "réseau",
    "batch": "lot",
    "future": "avenir",
    "cursor": "curseur",
    "server": "serveur",
    "client": "client",
    "cat": "chat",
    "dog": "chien",
    "house": "maison",
    "water": "eau",
}


class TranslatorImpl(RemoteObject, Translator):
    """Dictionary-backed translator (English → *target*)."""

    def __init__(self, dictionary=None, target: str = "fr",
                 strict: bool = False):
        self._dictionary = dict(
            DEFAULT_DICTIONARY if dictionary is None else dictionary
        )
        self._target = target
        self._strict = strict
        self.requests = 0

    def translate(self, word: Word) -> Word:
        self.requests += 1
        if not isinstance(word, Word):
            raise TypeError(f"expected a Word, got {type(word).__name__}")
        translated = self._dictionary.get(word.text.lower())
        if translated is None:
            if self._strict:
                raise UnknownWordError(word.text, word.language)
            translated = word.text  # pass through untranslated
        return Word(translated, self._target)

    def target_language(self) -> str:
        return self._target


def translate_rmi(stub, words) -> list:
    """RMI: one round trip per word."""
    return [stub.translate(word) for word in words]


def translate_brmi(stub, words) -> list:
    """BRMI: a runtime-sized batch — one round trip total (§5.1):

    "the BRMI API makes it possible for the programmer to express the
    size and composition of batches at runtime."
    """
    batch = create_batch(stub)
    futures = [batch.translate(word) for word in words]
    batch.flush()
    return [future.get() for future in futures]
