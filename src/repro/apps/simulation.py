"""Remote simulation with a load balancer (§5.3, Figures 10-11).

Isolates the benefit of *remote reference identity* (§4.4).  The client
obtains a ``Balancer`` from the simulation server and passes it back into
every ``perform_simulation_step``:

- under RMI the balancer argument arrives as a *stub*, so each of the
  ``reps`` internal ``balance()`` calls re-enters the middleware through
  the loopback transport;
- under BRMI the executor resolves the batch-local reference to the
  identical server object, so ``balance()`` is a plain local call.

The BRMI workload flushes after every step (batch size one, like the
paper) so the measured gap is attributable to identity alone.
"""

from __future__ import annotations

from repro.core import create_batch
from repro.rmi import RemoteInterface, RemoteObject


class Balancer(RemoteInterface):
    """Load-balancing policy object created by the simulation server."""

    def balance(self) -> int:
        """Run one balancing decision; returns times invoked so far."""
        ...


class Simulation(RemoteInterface):
    """A long-running remote simulation."""

    def create_balancer(self) -> Balancer:
        """Create the balancer the client will parameterize steps with."""
        ...

    def perform_simulation_step(self, reps: int, balancer: Balancer) -> int:
        """Run one step, consulting the balancer *reps* times."""
        ...

    def get_simulation_results(self) -> float:
        """Aggregate result over all steps so far."""
        ...


class BalancerImpl(RemoteObject, Balancer):
    """Counts balancing decisions (observable work for the tests)."""

    def __init__(self):
        self.invocations = 0

    def balance(self) -> int:
        self.invocations += 1
        return self.invocations


class SimulationImpl(RemoteObject, Simulation):
    """Server-side simulation state."""

    def __init__(self):
        self._balancer = None
        self._steps = 0
        self._work = 0

    def create_balancer(self) -> Balancer:
        self._balancer = BalancerImpl()
        return self._balancer

    def perform_simulation_step(self, reps: int, balancer: Balancer) -> int:
        if reps < 0:
            raise ValueError(f"reps cannot be negative: {reps}")
        for _ in range(reps):
            # Local call in BRMI (identity preserved); remote loopback
            # call in RMI (argument arrived as a stub).
            balancer.balance()
        self._steps += 1
        self._work += reps
        return self._steps

    def get_simulation_results(self) -> float:
        return float(self._work)


def run_simulation_rmi(stub, steps: int, reps: int) -> float:
    """RMI: create a balancer, run steps, read the result."""
    balancer = stub.create_balancer()
    for _ in range(steps):
        stub.perform_simulation_step(reps, balancer)
    return stub.get_simulation_results()


def run_simulation_brmi(stub, steps: int, reps: int) -> float:
    """BRMI with one-method batches per step (isolates identity).

    ``flush_and_continue`` keeps the balancer alive in the server-side
    session between single-call batches.
    """
    batch = create_batch(stub)
    balancer = batch.create_balancer()
    batch.flush_and_continue()
    for _ in range(steps):
        batch.perform_simulation_step(reps, balancer)
        batch.flush_and_continue()
    result = batch.get_simulation_results()
    batch.flush()
    return result.get()
