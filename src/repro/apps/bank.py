"""Credit-card bank: the paper's second case study (§5.1, after Heller).

A ``CreditManager`` creates/looks up ``CreditCard`` accounts; purchases
and credit-line queries happen on the card.  The case study's point is
the exception policy: batching the lookup together with the purchases is
only safe if a lookup failure *breaks* the batch — which
:class:`~repro.core.policies.CustomPolicy` expresses without mobile code.
"""

from __future__ import annotations

import threading

from repro.core import CustomPolicy, ExceptionAction, create_batch
from repro.rmi import RemoteInterface, RemoteObject, remote_method
from repro.wire.registry import register_exception


@register_exception
class DuplicateAccountException(Exception):
    """Account creation for a customer who already has one."""


@register_exception
class AccountNotFoundException(Exception):
    """Lookup of a customer with no account."""


@register_exception
class InsufficientCreditError(Exception):
    """A purchase exceeding the remaining credit line."""


class CreditCard(RemoteInterface):
    """One customer's revolving credit account.

    Only the read path is ``parallel_safe``: purchases and payments are
    lock-correct but their *order* is observable through the balance, so
    they stay on the serial replay path.
    """

    @remote_method(parallel_safe=True)
    def get_credit_line(self) -> float:
        """Remaining credit."""
        ...

    def make_purchase(self, amount: float) -> None:
        """Charge the card; InsufficientCreditError if over the line."""
        ...

    def make_purchases(self, amounts: list) -> int:
        """Charge each amount in order; returns the count if all succeed.

        The first failing charge re-raises its exception; the charges
        before it stand, so a partial run leaves exactly the purchases
        that succeeded.
        """
        ...

    def pay_balance(self, amount: float) -> float:
        """Pay down the balance; returns the new balance."""
        ...


class CreditManager(RemoteInterface):
    """Account creation and lookup."""

    def create_credit_account(self, customer: str) -> CreditCard:
        """Open an account; DuplicateAccountException if one exists."""
        ...

    @remote_method(parallel_safe=True)
    def find_credit_account(self, customer: str) -> CreditCard:
        """Find an account; AccountNotFoundException if none."""
        ...

    @remote_method(parallel_safe=True)
    def credit_line_of(self, card: CreditCard) -> float:
        """Remaining credit of a card passed back by remote reference.

        The manager calls through the argument, so this works whether the
        card arrives as a loopback stub (plain RMI) or as the live server
        object (a batch-local reference, §4.4).
        """
        ...


class CreditCardImpl(RemoteObject, CreditCard):
    """Server-side account with a fixed credit limit."""

    def __init__(self, customer: str, limit: float = 5000.0):
        self.customer = customer
        self._limit = float(limit)
        self._balance = 0.0
        self._lock = threading.Lock()

    def get_credit_line(self) -> float:
        with self._lock:
            return self._limit - self._balance

    def make_purchase(self, amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"purchase amount must be positive: {amount}")
        with self._lock:
            if self._balance + amount > self._limit:
                raise InsufficientCreditError(self.customer, amount)
            self._balance += amount

    def make_purchases(self, amounts: list) -> int:
        charged = 0
        for amount in amounts:
            self.make_purchase(amount)
            charged += 1
        return charged

    def pay_balance(self, amount: float) -> float:
        if amount <= 0:
            raise ValueError(f"payment must be positive: {amount}")
        with self._lock:
            self._balance = max(0.0, self._balance - amount)
            return self._balance


class CreditManagerImpl(RemoteObject, CreditManager):
    """Server-side account directory."""

    def __init__(self, default_limit: float = 5000.0):
        self._accounts = {}
        self._default_limit = default_limit
        self._lock = threading.Lock()

    def create_credit_account(self, customer: str) -> CreditCard:
        with self._lock:
            if customer in self._accounts:
                raise DuplicateAccountException(customer)
            account = CreditCardImpl(customer, self._default_limit)
            self._accounts[customer] = account
            return account

    def find_credit_account(self, customer: str) -> CreditCard:
        with self._lock:
            account = self._accounts.get(customer)
        if account is None:
            raise AccountNotFoundException(customer)
        return account

    def credit_line_of(self, card: CreditCard) -> float:
        return card.get_credit_line()


def bank_policy() -> CustomPolicy:
    """The paper's exception policy for batched banking (§5.1):

    continue by default, but break the batch when the account lookup
    fails — the purchases that follow would be meaningless.
    """
    policy = CustomPolicy()
    policy.set_default_action(ExceptionAction.CONTINUE)
    policy.set_action(
        AccountNotFoundException,
        ExceptionAction.BREAK,
        method="find_credit_account",
    )
    policy.set_action(
        DuplicateAccountException,
        ExceptionAction.BREAK,
        method="create_credit_account",
    )
    return policy


def purchase_session_rmi(stub, customer: str, amounts) -> float:
    """RMI: lookup + one round trip per purchase + credit-line query."""
    account = stub.find_credit_account(customer)
    for amount in amounts:
        account.make_purchase(amount)
    return account.get_credit_line()


def purchase_session_brmi(stub, customer: str, amounts) -> float:
    """BRMI: the whole session in one batch under the bank policy."""
    manager = create_batch(stub, policy=bank_policy())
    account = manager.find_credit_account(customer)
    for amount in amounts:
        account.make_purchase(amount)
    credit_line = account.get_credit_line()
    manager.flush()
    return credit_line.get()
