"""Value types that the wire format understands natively.

A :class:`RemoteRef` is the on-the-wire representation of a remote object:
where it lives (``endpoint``), which slot in that server's object table it
occupies (``object_id``), and which remote interfaces it provides.  The RMI
layer (:mod:`repro.rmi`) turns exported objects into refs when marshalling
and refs into stubs when unmarshalling; the wire layer only needs to move
the three fields faithfully.

Defined here rather than in :mod:`repro.rmi` so the codec has no dependency
on the middleware above it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class RemoteRef:
    """A location-transparent reference to an exported remote object.

    Two refs are equal when they name the same slot of the same server,
    which is also how stub equality is defined (mirroring Java RMI, where
    stubs compare equal by remote identity, not by proxy identity).

    ``shard`` is the cluster-placement label of the server that minted
    the ref (``"i/N"``), or ``""`` outside a cluster.  It is advisory
    routing metadata — the endpoint already pins the home server — so it
    is excluded from equality, and refs without it encode byte-identically
    to the pre-cluster wire format.
    """

    endpoint: str
    object_id: int
    interfaces: Tuple[str, ...] = ()
    shard: str = field(default="", compare=False)

    def __post_init__(self):
        if not isinstance(self.object_id, int) or self.object_id < 0:
            raise ValueError(f"object_id must be a non-negative int: {self.object_id!r}")
        if not isinstance(self.endpoint, str) or not self.endpoint:
            raise ValueError("endpoint must be a non-empty string")
        if not isinstance(self.shard, str):
            raise ValueError("shard must be a string label")
        object.__setattr__(self, "interfaces", tuple(self.interfaces))

    def provides(self, interface_name: str) -> bool:
        """Whether the referenced object declared *interface_name*."""
        return interface_name in self.interfaces

    def __repr__(self):
        ifaces = ",".join(self.interfaces) or "?"
        return f"<RemoteRef {self.endpoint}#{self.object_id} [{ifaces}]>"
