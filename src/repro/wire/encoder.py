"""Tagged binary encoder for the wire format.

The format is a simple self-describing TLV scheme: every value starts with
a one-byte tag, followed by a fixed or length-prefixed payload.  It exists
so the simulated network can account for bytes honestly and so the TCP
transport has a real codec — the same role Java serialization plays under
Java RMI in the paper.

Supported values: ``None``, ``bool``, ``int`` (arbitrary precision),
``float``, ``str``, ``bytes``, ``list``, ``tuple``, ``dict``, ``set``,
``frozenset``, registered serializable objects (see
:mod:`repro.wire.registry`), exceptions, and :class:`~repro.wire.refs.RemoteRef`.

All multi-byte integers are big-endian.  Container lengths are u32.

**Zero-copy pipeline.**  The byte layout is frozen (golden-bytes tests
pin it), but the implementation is built for throughput:

- type dispatch is a ``dict[type, handler]`` lookup with an
  ``isinstance`` fallback for subclasses (exceptions, IntEnums,
  RemoteRef subclasses) — no if/elif chain walk per value; container
  handlers dispatch their items inline, one lookup + one call per item;
- the core operates on a bare ``bytearray``: no encoder-object state on
  the hot path, and tag + fixed payload (or tag + u32 length) are packed
  in a single ``struct`` call — small non-negative ints come from a
  pre-packed cache;
- ``bytes``/``bytearray``/``memoryview`` payloads append straight into
  the message buffer — no intermediate ``bytes(value)`` staging copy;
- the module-level helpers draw their ``bytearray`` from a shared
  :class:`~repro.wire.buffers.BufferPool` so steady-state encoding
  churns no buffer objects;
- :func:`encode_framed` reserves the 4-byte frame length up front and
  patches it in place — one buffer, zero concatenation — for callers
  that want wire-ready framed messages.
"""

from __future__ import annotations

import struct

from repro.wire import registry
from repro.wire.buffers import GLOBAL_POOL
from repro.wire.errors import EncodeError
from repro.wire.refs import RemoteRef

# One tag byte per supported shape.  Kept as module constants so the
# decoder and tests can reference them by name.
TAG_NONE = b"N"
TAG_TRUE = b"T"
TAG_FALSE = b"F"
TAG_INT64 = b"I"
TAG_BIGINT = b"J"
TAG_FLOAT = b"D"
TAG_STR = b"S"
TAG_BYTES = b"B"
TAG_LIST = b"L"
TAG_TUPLE = b"U"
TAG_DICT = b"M"
TAG_SET = b"E"
TAG_FROZENSET = b"G"
TAG_OBJECT = b"O"
TAG_EXCEPTION = b"X"
TAG_REMOTE_REF = b"R"
TAG_SHARDED_REF = b"r"

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1
_MAX_DEPTH = 100

_u32 = struct.Struct(">I")
# Combined tag+payload headers: one C pack call instead of two appends.
_tag_i64 = struct.Struct(">cq")
_tag_f64 = struct.Struct(">cd")
_tag_u32 = struct.Struct(">cI")

_pack_i64 = _tag_i64.pack
_pack_f64 = _tag_f64.pack
_pack_u32 = _tag_u32.pack

# Small non-negative ints dominate real traffic (object ids, counts,
# cursor indices); their 9-byte encodings are immutable — pre-pack them.
_INT_CACHE = tuple(_pack_i64(TAG_INT64, i) for i in range(256))

# Container headers for small item counts, one per container tag.
_LIST_HDRS = tuple(_pack_u32(TAG_LIST, n) for n in range(256))
_TUPLE_HDRS = tuple(_pack_u32(TAG_TUPLE, n) for n in range(256))
_DICT_HDRS = tuple(_pack_u32(TAG_DICT, n) for n in range(256))
_SET_HDRS = tuple(_pack_u32(TAG_SET, n) for n in range(256))
_FROZENSET_HDRS = tuple(_pack_u32(TAG_FROZENSET, n) for n in range(256))

# Short strings repeat heavily (method names, field keys, account ids):
# memoize their full TLV encoding.  str hashes are memoized per object,
# so a hit is one dict probe + one append.  Bounded: wiped when full.
_STR_CACHE: dict = {}
_STR_CACHE_MAX = 4096
_STR_CACHE_MAX_LEN = 64


# -- the function core: every handler appends to a bare bytearray --------


def _encode_value(buf, value, depth):
    """Append one value's encoding to *buf* (the dispatch entry point)."""
    if depth > _MAX_DEPTH:
        raise EncodeError(value, f"nesting deeper than {_MAX_DEPTH}")
    handler = _DISPATCH.get(type(value))
    if handler is not None:
        handler(buf, value, depth)
    else:
        _encode_fallback(buf, value, depth)


def _encode_fallback(buf, value, depth):
    """Subclass / registered-object path, off the exact-type table.

    Exactly one ``isinstance(value, RemoteRef)`` check lives in the
    encoder: exact refs hit the dispatch table, subclasses land here and
    are encoded as plain refs (the wire has no subclass notion), ahead
    of the registry so a ref cannot be shadowed by a registration.
    """
    if isinstance(value, BaseException):
        _encode_exception(buf, value, depth)
    elif isinstance(value, RemoteRef):
        _encode_remote_ref(buf, value, depth)
    elif registry.is_serializable(value):
        # First encounter of a registered class: bake its handler (class
        # name and field keys pre-encoded) into the dispatch table, so
        # every later instance is one table hit away.
        handler = _make_object_handler(type(value))
        _DISPATCH[type(value)] = handler
        handler(buf, value, depth)
    elif isinstance(value, int):  # bool is table-dispatched; IntEnum etc.
        _encode_int(buf, int(value), depth)
    else:
        raise EncodeError(
            value,
            "not a wire-native type and not registered via "
            "repro.wire.registry.serializable",
        )


def _encode_none(buf, value, depth):
    buf += TAG_NONE


def _encode_bool(buf, value, depth):
    buf += TAG_TRUE if value else TAG_FALSE


def _encode_int(buf, value, depth):
    if 0 <= value < 256:
        buf += _INT_CACHE[value]
    elif _INT64_MIN <= value <= _INT64_MAX:
        buf += _pack_i64(TAG_INT64, value)
    else:
        sign = 1 if value < 0 else 0
        magnitude = abs(value)
        raw = magnitude.to_bytes((magnitude.bit_length() + 7) // 8, "big")
        buf += _pack_u32(TAG_BIGINT, len(raw))
        buf.append(sign)
        buf += raw


def _encode_float(buf, value, depth):
    buf += _pack_f64(TAG_FLOAT, value)


def _encode_str(buf, value, depth):
    pre = _STR_CACHE.get(value)
    if pre is not None:
        buf += pre
        return
    raw = value.encode("utf-8")
    if len(raw) <= _STR_CACHE_MAX_LEN:
        if len(_STR_CACHE) >= _STR_CACHE_MAX:
            _STR_CACHE.clear()
        pre = _STR_CACHE[value] = _pack_u32(TAG_STR, len(raw)) + raw
        buf += pre
    else:
        buf += _pack_u32(TAG_STR, len(raw))
        buf += raw


def _encode_bytes(buf, value, depth):
    # bytes/bytearray append directly — no bytes(value) staging copy.
    buf += _pack_u32(TAG_BYTES, len(value))
    buf += value


def _encode_memoryview(buf, value, depth):
    if value.format != "B" or value.ndim != 1 or not value.contiguous:
        try:
            value = value.cast("B")
        except (TypeError, ValueError):
            # Non-contiguous (cast refuses): linearize once.
            value = value.tobytes()
    buf += _pack_u32(TAG_BYTES, len(value))
    buf += value


# Container handlers dispatch their items inline (one dict lookup, one
# call per item) and hoist the depth check out of the per-item loop —
# all items of one container sit at the same depth, and an empty
# container at the depth limit is legal (it recurses into nothing).


def _encode_list(buf, value, depth):
    count = len(value)
    buf += _LIST_HDRS[count] if count < 256 else _pack_u32(TAG_LIST, count)
    depth += 1
    if value and depth > _MAX_DEPTH:
        raise EncodeError(value, f"nesting deeper than {_MAX_DEPTH}")
    lookup = _DISPATCH.get
    for item in value:
        handler = lookup(type(item))
        if handler is not None:
            handler(buf, item, depth)
        else:
            _encode_fallback(buf, item, depth)


def _encode_tuple(buf, value, depth):
    count = len(value)
    buf += _TUPLE_HDRS[count] if count < 256 else _pack_u32(TAG_TUPLE, count)
    depth += 1
    if value and depth > _MAX_DEPTH:
        raise EncodeError(value, f"nesting deeper than {_MAX_DEPTH}")
    lookup = _DISPATCH.get
    for item in value:
        handler = lookup(type(item))
        if handler is not None:
            handler(buf, item, depth)
        else:
            _encode_fallback(buf, item, depth)


def _encode_dict(buf, value, depth):
    count = len(value)
    buf += _DICT_HDRS[count] if count < 256 else _pack_u32(TAG_DICT, count)
    depth += 1
    if value and depth > _MAX_DEPTH:
        raise EncodeError(value, f"nesting deeper than {_MAX_DEPTH}")
    lookup = _DISPATCH.get
    for key, item in value.items():
        handler = lookup(type(key))
        if handler is not None:
            handler(buf, key, depth)
        else:
            _encode_fallback(buf, key, depth)
        handler = lookup(type(item))
        if handler is not None:
            handler(buf, item, depth)
        else:
            _encode_fallback(buf, item, depth)


def _encode_set(buf, value, depth):
    _encode_set_items(buf, TAG_SET, _SET_HDRS, value, depth)


def _encode_frozenset(buf, value, depth):
    _encode_set_items(buf, TAG_FROZENSET, _FROZENSET_HDRS, value, depth)


def _encode_set_items(buf, tag, hdrs, value, depth):
    count = len(value)
    buf += hdrs[count] if count < 256 else _pack_u32(tag, count)
    depth += 1
    if value and depth > _MAX_DEPTH:
        raise EncodeError(value, f"nesting deeper than {_MAX_DEPTH}")
    lookup = _DISPATCH.get
    for item in canonical_set_order(value):
        handler = lookup(type(item))
        if handler is not None:
            handler(buf, item, depth)
        else:
            _encode_fallback(buf, item, depth)


def _encode_remote_ref(buf, ref, depth):
    # Shard-less refs keep the frozen 3-field "R" layout byte for byte;
    # a shard label selects the 4-field "r" variant instead of growing
    # the old tag (its field list has no length prefix to extend).
    buf += TAG_SHARDED_REF if ref.shard else TAG_REMOTE_REF
    depth += 1
    _encode_value(buf, ref.endpoint, depth)
    _encode_value(buf, ref.object_id, depth)
    _encode_value(buf, ref.interfaces, depth)
    if ref.shard:
        _encode_value(buf, ref.shard, depth)


def _pre_encode_str(value: str) -> bytes:
    raw = value.encode("utf-8")
    return _pack_u32(TAG_STR, len(raw)) + raw


def _make_object_handler(cls):
    """Build a dispatch-table handler for one registered class.

    The wire name (and, for dataclasses, the field-name keys and dict
    header) never change for a given class, so they are encoded once
    here and appended as pre-baked byte strings per instance.  Byte
    layout is identical to the generic :func:`_encode_object` path.
    """
    class_name = registry.qualified_name(cls)
    name_pre = _pre_encode_str(class_name)
    field_names = registry.wire_fields_of(cls)
    if field_names is None:
        # to_wire/from_wire hook class: field dict is dynamic.
        prefix = bytes(TAG_OBJECT + name_pre)

        def handler(buf, value, depth):
            depth += 1
            if depth > _MAX_DEPTH:
                raise EncodeError(value, f"nesting deeper than {_MAX_DEPTH}")
            _, fields = registry.object_to_wire(value)
            buf += prefix
            _encode_value(buf, dict(fields), depth)

        return handler

    prefix = bytes(TAG_OBJECT + name_pre + _pack_u32(TAG_DICT, len(field_names)))
    pre_keys = tuple((_pre_encode_str(name), name) for name in field_names)

    def handler(buf, value, depth):
        # The class-name string and field dict sit at depth+1, the field
        # keys/values at depth+2 — mirror the generic path's checks.
        if depth + 1 > _MAX_DEPTH:
            raise EncodeError(value, f"nesting deeper than {_MAX_DEPTH}")
        buf += prefix
        if not pre_keys:
            return
        depth += 2
        if depth > _MAX_DEPTH:
            raise EncodeError(value, f"nesting deeper than {_MAX_DEPTH}")
        lookup = _DISPATCH.get
        for key_pre, name in pre_keys:
            buf += key_pre
            item = getattr(value, name)
            item_handler = lookup(type(item))
            if item_handler is not None:
                item_handler(buf, item, depth)
            else:
                _encode_fallback(buf, item, depth)

    return handler


def _encode_exception(buf, exc, depth):
    class_name, args = registry.exception_to_wire(exc)
    # Exception args may themselves be un-encodable objects; degrade
    # them to their repr rather than failing the whole response.
    safe_args = []
    for arg in args:
        try:
            _encode_value(bytearray(), arg, depth + 1)
        except EncodeError:
            safe_args.append(repr(arg))
        else:
            safe_args.append(arg)
    buf += TAG_EXCEPTION
    _encode_value(buf, class_name, depth + 1)
    _encode_value(buf, tuple(safe_args), depth + 1)


_DISPATCH = {
    type(None): _encode_none,
    bool: _encode_bool,
    int: _encode_int,
    float: _encode_float,
    str: _encode_str,
    bytes: _encode_bytes,
    bytearray: _encode_bytes,
    memoryview: _encode_memoryview,
    list: _encode_list,
    tuple: _encode_tuple,
    dict: _encode_dict,
    set: _encode_set,
    frozenset: _encode_frozenset,
    RemoteRef: _encode_remote_ref,
}


class Encoder:
    """Streams values into an internal buffer.

    One encoder instance per message; call :meth:`encode` for each root
    value and :meth:`getvalue` (a detached ``bytes`` copy) or
    :meth:`getbuffer` (a zero-copy ``memoryview``) for the result.

    Pass a ``bytearray`` to reuse a caller-owned buffer (typically from
    a :class:`~repro.wire.buffers.BufferPool`); the encoder appends to
    whatever the buffer already holds.
    """

    __slots__ = ("_buf",)

    def __init__(self, buffer: bytearray = None):
        self._buf = bytearray() if buffer is None else buffer

    def getvalue(self) -> bytes:
        """The bytes encoded so far (a detached, immutable copy)."""
        return bytes(self._buf)

    def getbuffer(self) -> memoryview:
        """A zero-copy view of the bytes encoded so far.

        The view is only valid until the underlying buffer changes: a
        further :meth:`encode` (or the pool reclaiming the buffer) needs
        to resize it, which Python forbids while a view is exported.
        Release the view (``view.release()``) before encoding more.
        """
        return memoryview(self._buf)

    def __len__(self):
        return len(self._buf)

    def encode(self, value) -> "Encoder":
        """Append one value to the buffer; returns self for chaining."""
        _encode_value(self._buf, value, 0)
        return self

    # -- framing support ----------------------------------------------

    def reserve_frame_header(self) -> int:
        """Append a 4-byte length placeholder; returns its offset."""
        buf = self._buf
        offset = len(buf)
        buf += b"\x00\x00\x00\x00"
        return offset

    def patch_frame_header(self, offset: int) -> None:
        """Fill the placeholder at *offset* with the length of everything
        encoded after it — the in-place alternative to concatenating a
        header in front of a finished payload."""
        from repro.wire.framing import MAX_FRAME_SIZE, FrameTooLargeError

        length = len(self._buf) - offset - 4
        if length < 0:
            raise ValueError(f"no frame header reserved at offset {offset}")
        if length > MAX_FRAME_SIZE:
            # Fail on the sending side like every other framing entry
            # point, not as a peer-side connection drop.
            raise FrameTooLargeError(length)
        _u32.pack_into(self._buf, offset, length)


def _set_sort_key(item):
    # Deterministic encoding of sets regardless of hash seed.  Mixed-type
    # sets sort by (type name, repr) which is stable enough for the wire.
    return (type(item).__name__, repr(item))


def canonical_set_order(values) -> list:
    """The codec's deterministic iteration order for set members.

    Public because anything that derives identity from encoded bytes —
    the plan compiler numbers parameter slots while walking arguments —
    must walk sets in exactly the order the encoder will.
    """
    return sorted(values, key=_set_sort_key)


def encode(value) -> bytes:
    """Encode a single value to bytes (pooled buffer under the hood)."""
    pool = GLOBAL_POOL
    buf = pool.acquire()
    try:
        _encode_value(buf, value, 0)
        return bytes(buf)
    finally:
        pool.release(buf)


def encode_many(values) -> bytes:
    """Encode several values back-to-back into one byte string."""
    pool = GLOBAL_POOL
    buf = pool.acquire()
    try:
        for value in values:
            _encode_value(buf, value, 0)
        return bytes(buf)
    finally:
        pool.release(buf)


def encode_framed(value) -> bytes:
    """Encode *value* with its u32 frame length prefix, in one buffer.

    The header is reserved before encoding and patched in place after —
    no header+payload concatenation anywhere.  The result is exactly
    ``frame(encode(value))`` byte-for-byte, ready for a stream socket.

    The RMI stack itself encodes (client/dispatch) and frames
    (transport) in different layers, so its hot paths use
    ``write_frame``/``writelines`` scatter-gather instead; this is the
    one-shot path for callers that own both steps — tools, tests, and
    the codec benchmark lane keep it honest.
    """
    from repro.wire.framing import MAX_FRAME_SIZE, FrameTooLargeError

    pool = GLOBAL_POOL
    buf = pool.acquire()
    try:
        buf += b"\x00\x00\x00\x00"
        _encode_value(buf, value, 0)
        length = len(buf) - 4
        if length > MAX_FRAME_SIZE:
            raise FrameTooLargeError(length)
        _u32.pack_into(buf, 0, length)
        return bytes(buf)
    finally:
        pool.release(buf)
