"""Tagged binary encoder for the wire format.

The format is a simple self-describing TLV scheme: every value starts with
a one-byte tag, followed by a fixed or length-prefixed payload.  It exists
so the simulated network can account for bytes honestly and so the TCP
transport has a real codec — the same role Java serialization plays under
Java RMI in the paper.

Supported values: ``None``, ``bool``, ``int`` (arbitrary precision),
``float``, ``str``, ``bytes``, ``list``, ``tuple``, ``dict``, ``set``,
``frozenset``, registered serializable objects (see
:mod:`repro.wire.registry`), exceptions, and :class:`~repro.wire.refs.RemoteRef`.

All multi-byte integers are big-endian.  Container lengths are u32.
"""

from __future__ import annotations

import struct

from repro.wire import registry
from repro.wire.errors import EncodeError
from repro.wire.refs import RemoteRef

# One tag byte per supported shape.  Kept as module constants so the
# decoder and tests can reference them by name.
TAG_NONE = b"N"
TAG_TRUE = b"T"
TAG_FALSE = b"F"
TAG_INT64 = b"I"
TAG_BIGINT = b"J"
TAG_FLOAT = b"D"
TAG_STR = b"S"
TAG_BYTES = b"B"
TAG_LIST = b"L"
TAG_TUPLE = b"U"
TAG_DICT = b"M"
TAG_SET = b"E"
TAG_FROZENSET = b"G"
TAG_OBJECT = b"O"
TAG_EXCEPTION = b"X"
TAG_REMOTE_REF = b"R"

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1
_MAX_DEPTH = 100

_u32 = struct.Struct(">I")
_i64 = struct.Struct(">q")
_f64 = struct.Struct(">d")


class Encoder:
    """Streams values into an internal buffer.

    One encoder instance per message; call :meth:`encode` for each root
    value and :meth:`getvalue` for the final bytes.
    """

    def __init__(self):
        self._buf = bytearray()

    def getvalue(self) -> bytes:
        """The bytes encoded so far."""
        return bytes(self._buf)

    def __len__(self):
        return len(self._buf)

    def encode(self, value) -> "Encoder":
        """Append one value to the buffer; returns self for chaining."""
        self._encode(value, 0)
        return self

    # -- internals ---------------------------------------------------

    def _encode(self, value, depth):
        if depth > _MAX_DEPTH:
            raise EncodeError(value, f"nesting deeper than {_MAX_DEPTH}")
        buf = self._buf
        if value is None:
            buf += TAG_NONE
        elif value is True:
            buf += TAG_TRUE
        elif value is False:
            buf += TAG_FALSE
        elif type(value) is int:
            self._encode_int(value)
        elif type(value) is float:
            buf += TAG_FLOAT
            buf += _f64.pack(value)
        elif type(value) is str:
            raw = value.encode("utf-8")
            buf += TAG_STR
            buf += _u32.pack(len(raw))
            buf += raw
        elif type(value) in (bytes, bytearray, memoryview):
            raw = bytes(value)
            buf += TAG_BYTES
            buf += _u32.pack(len(raw))
            buf += raw
        elif type(value) is list:
            self._encode_items(TAG_LIST, value, depth)
        elif type(value) is tuple:
            self._encode_items(TAG_TUPLE, value, depth)
        elif type(value) is dict:
            buf += TAG_DICT
            buf += _u32.pack(len(value))
            for key, item in value.items():
                self._encode(key, depth + 1)
                self._encode(item, depth + 1)
        elif type(value) is set:
            self._encode_items(TAG_SET, canonical_set_order(value), depth)
        elif type(value) is frozenset:
            self._encode_items(
                TAG_FROZENSET, canonical_set_order(value), depth
            )
        elif type(value) is RemoteRef:
            self._encode_remote_ref(value, depth)
        elif isinstance(value, BaseException):
            self._encode_exception(value, depth)
        elif registry.is_serializable(value):
            self._encode_object(value, depth)
        elif isinstance(value, int):  # bool handled above; IntEnum etc.
            self._encode_int(int(value))
        elif isinstance(value, RemoteRef):
            self._encode_remote_ref(value, depth)
        else:
            raise EncodeError(
                value,
                "not a wire-native type and not registered via "
                "repro.wire.registry.serializable",
            )

    def _encode_int(self, value):
        buf = self._buf
        if _INT64_MIN <= value <= _INT64_MAX:
            buf += TAG_INT64
            buf += _i64.pack(value)
        else:
            sign = 1 if value < 0 else 0
            magnitude = abs(value)
            raw = magnitude.to_bytes((magnitude.bit_length() + 7) // 8, "big")
            buf += TAG_BIGINT
            buf += _u32.pack(len(raw))
            buf += bytes([sign])
            buf += raw

    def _encode_items(self, tag, items, depth):
        self._buf += tag
        self._buf += _u32.pack(len(items))
        for item in items:
            self._encode(item, depth + 1)

    def _encode_object(self, value, depth):
        class_name, fields = registry.object_to_wire(value)
        self._buf += TAG_OBJECT
        self._encode(class_name, depth + 1)
        self._encode(dict(fields), depth + 1)

    def _encode_exception(self, exc, depth):
        class_name, args = registry.exception_to_wire(exc)
        # Exception args may themselves be un-encodable objects; degrade
        # them to their repr rather than failing the whole response.
        safe_args = []
        for arg in args:
            try:
                probe = Encoder()
                probe._encode(arg, depth + 1)
            except EncodeError:
                safe_args.append(repr(arg))
            else:
                safe_args.append(arg)
        self._buf += TAG_EXCEPTION
        self._encode(class_name, depth + 1)
        self._encode(tuple(safe_args), depth + 1)

    def _encode_remote_ref(self, ref, depth):
        self._buf += TAG_REMOTE_REF
        self._encode(ref.endpoint, depth + 1)
        self._encode(ref.object_id, depth + 1)
        self._encode(ref.interfaces, depth + 1)


def _set_sort_key(item):
    # Deterministic encoding of sets regardless of hash seed.  Mixed-type
    # sets sort by (type name, repr) which is stable enough for the wire.
    return (type(item).__name__, repr(item))


def canonical_set_order(values) -> list:
    """The codec's deterministic iteration order for set members.

    Public because anything that derives identity from encoded bytes —
    the plan compiler numbers parameter slots while walking arguments —
    must walk sets in exactly the order the encoder will.
    """
    return sorted(values, key=_set_sort_key)


def encode(value) -> bytes:
    """Encode a single value to bytes."""
    return Encoder().encode(value).getvalue()


def encode_many(values) -> bytes:
    """Encode several values back-to-back into one byte string."""
    enc = Encoder()
    for value in values:
        enc.encode(value)
    return enc.getvalue()
