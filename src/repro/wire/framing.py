"""Length-prefixed message framing for stream transports.

TCP delivers a byte stream; the RMI protocol exchanges discrete messages.
Frames are ``u32 length`` + payload.  A maximum frame size guards both
sides against a corrupt or hostile length prefix.
"""

from __future__ import annotations

import struct

from repro.wire.errors import DecodeError

_u32 = struct.Struct(">I")

#: Upper bound on a single message.  Large enough for the file-server
#: macro benchmark payloads (hundreds of KB), small enough to reject
#: garbage prefixes immediately.
MAX_FRAME_SIZE = 64 * 1024 * 1024


class FrameTooLargeError(DecodeError):
    """A frame length prefix exceeded :data:`MAX_FRAME_SIZE`."""

    def __init__(self, size):
        self.size = size
        super().__init__(f"frame of {size} bytes exceeds limit {MAX_FRAME_SIZE}")


def frame(payload: bytes) -> bytes:
    """Wrap *payload* in a length prefix."""
    if len(payload) > MAX_FRAME_SIZE:
        raise FrameTooLargeError(len(payload))
    return _u32.pack(len(payload)) + payload


def read_frame(sock) -> bytes:
    """Read one complete frame from a socket-like object.

    Returns ``b""`` on clean EOF at a frame boundary.  Raises
    :class:`~repro.wire.errors.DecodeError` on EOF mid-frame or an
    oversized prefix.
    """
    header = _read_exact(sock, 4, allow_eof=True)
    if header == b"":
        return b""
    (length,) = _u32.unpack(header)
    if length > MAX_FRAME_SIZE:
        raise FrameTooLargeError(length)
    return _read_exact(sock, length, allow_eof=False)


def _read_exact(sock, count, allow_eof):
    chunks = []
    got = 0
    while got < count:
        chunk = sock.recv(count - got)
        if not chunk:
            if allow_eof and got == 0:
                return b""
            raise DecodeError(
                f"connection closed mid-frame ({got}/{count} bytes read)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


class FrameBuffer:
    """Incremental frame reassembly for non-blocking or chunked input.

    Feed arbitrary byte chunks with :meth:`feed`; complete frames pop out
    of :meth:`frames`.
    """

    def __init__(self):
        self._buf = bytearray()

    def feed(self, data: bytes):
        """Append received bytes to the reassembly buffer."""
        self._buf += data

    def frames(self):
        """Yield every complete frame currently buffered."""
        while True:
            if len(self._buf) < 4:
                return
            (length,) = _u32.unpack(bytes(self._buf[:4]))
            if length > MAX_FRAME_SIZE:
                raise FrameTooLargeError(length)
            if len(self._buf) < 4 + length:
                return
            payload = bytes(self._buf[4 : 4 + length])
            del self._buf[: 4 + length]
            yield payload

    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buf)
