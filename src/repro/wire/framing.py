"""Length-prefixed message framing for stream transports.

TCP delivers a byte stream; the RMI protocol exchanges discrete messages.
Frames are ``u32 length`` + payload.  A maximum frame size guards both
sides against a corrupt or hostile length prefix.

**Zero-copy pipeline.**  The hot paths never glue header and payload
into a fresh buffer:

- :func:`frame_views` hands back the ``(header, payload)`` scatter list;
- :func:`write_frame` pushes that list through ``socket.sendmsg`` —
  scatter-gather I/O, no concatenation (falling back to ``sendall``
  where ``sendmsg`` does not exist);
- :class:`FrameReceiver` reads frames with ``recv_into`` into one
  reusable per-connection buffer and yields ``memoryview`` windows of
  it, so the decoder can run straight off the receive buffer;
- :func:`frame` survives as the compatibility wrapper for callers that
  want one contiguous ``bytes`` (tests, golden fixtures, legacy code).
"""

from __future__ import annotations

import struct

from repro.wire.errors import DecodeError

_u32 = struct.Struct(">I")

#: Upper bound on a single message.  Large enough for the file-server
#: macro benchmark payloads (hundreds of KB), small enough to reject
#: garbage prefixes immediately.
MAX_FRAME_SIZE = 64 * 1024 * 1024


class FrameTooLargeError(DecodeError):
    """A frame length prefix exceeded :data:`MAX_FRAME_SIZE`."""

    def __init__(self, size):
        self.size = size
        super().__init__(f"frame of {size} bytes exceeds limit {MAX_FRAME_SIZE}")


def frame_views(payload):
    """The ``(header, payload)`` scatter list for one frame.

    No copy of *payload* is made; pass the pair to ``sendmsg`` /
    ``writelines`` (or join it for a contiguous frame).
    """
    size = len(payload)
    if size > MAX_FRAME_SIZE:
        raise FrameTooLargeError(size)
    return _u32.pack(size), payload


def frame(payload: bytes) -> bytes:
    """Wrap *payload* in a length prefix (compatibility path).

    Thin wrapper over :func:`frame_views`; prefer :func:`write_frame`
    (sockets) or the views themselves (``writelines``) on hot paths —
    this variant pays one header+payload concatenation.
    """
    header, body = frame_views(payload)
    return header + body


def write_frame(sock, payload) -> None:
    """Send one framed message with scatter-gather I/O.

    ``sendmsg([header, payload])`` hands the kernel both pieces in one
    syscall without building a contiguous copy.  Short writes are
    finished with ``sendall`` over a zero-copy view of the remainder.
    """
    header, body = frame_views(payload)
    sendmsg = getattr(sock, "sendmsg", None)
    if sendmsg is None:  # fake/test sockets and exotic platforms
        sock.sendall(header)
        sock.sendall(body)
        return
    sent = sendmsg((header, body))
    total = 4 + len(body)
    if sent >= total:
        return
    # Short write: finish from the first unsent byte, copy-free.
    if sent < 4:
        sock.sendall(header[sent:])
        sock.sendall(body)
    else:
        sock.sendall(memoryview(body)[sent - 4 :])


def read_frame(sock) -> bytes:
    """Read one complete frame from a socket-like object.

    Returns ``b""`` on clean EOF at a frame boundary.  Raises
    :class:`~repro.wire.errors.DecodeError` on EOF mid-frame or an
    oversized prefix.
    """
    header = _read_exact(sock, 4, allow_eof=True)
    if header == b"":
        return b""
    (length,) = _u32.unpack(header)
    if length > MAX_FRAME_SIZE:
        raise FrameTooLargeError(length)
    return _read_exact(sock, length, allow_eof=False)


def _read_exact(sock, count, allow_eof):
    chunks = []
    got = 0
    while got < count:
        chunk = sock.recv(count - got)
        if not chunk:
            if allow_eof and got == 0:
                return b""
            raise DecodeError(
                f"connection closed mid-frame ({got}/{count} bytes read)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


class FrameReceiver:
    """Reads frames into one reusable buffer with ``recv_into``.

    One receiver per connection.  :meth:`receive` returns a
    ``memoryview`` window of the internal buffer — **valid only until
    the next** :meth:`receive` **call** — or ``b""`` on clean EOF at a
    frame boundary.  Callers that must keep the payload past the next
    frame take their own ``bytes(view)`` copy; callers that decode
    immediately (the server loop) run zero-copy.

    The buffer grows *and shrinks* by replacement (never in-place
    resize), so a view of the previous frame can still be alive when
    the buffer turns over without tripping ``BufferError``.  After an
    oversized frame, the next frame that fits the initial capacity
    swaps the grown buffer for a fresh initial-sized one — a single
    64KB blob no longer pins a large buffer for the connection's
    remaining lifetime, while a sustained run of large frames keeps its
    grown buffer (no per-frame reallocation).
    """

    #: Starting payload-buffer capacity; covers typical RMI messages.
    INITIAL_CAPACITY = 8192

    def __init__(self, initial_capacity: int = INITIAL_CAPACITY):
        self._initial = max(1, initial_capacity)
        self._buf = bytearray(self._initial)
        self._header = bytearray(4)

    @property
    def capacity(self) -> int:
        """Current size of the reusable payload buffer."""
        return len(self._buf)

    def receive(self, sock):
        """Read one frame; view of the payload, or ``b""`` on clean EOF."""
        if not self._fill(sock, self._header, 4, allow_eof=True):
            return b""
        (length,) = _u32.unpack(self._header)
        if length > MAX_FRAME_SIZE:
            raise FrameTooLargeError(length)
        if length > len(self._buf):
            # Replace, don't resize: outstanding views keep the old
            # buffer alive and untouched.
            new_size = len(self._buf)
            while new_size < length:
                new_size *= 2
            self._buf = bytearray(new_size)
        elif length <= self._initial < len(self._buf):
            # Shrink back after an oversized frame, also by replacement:
            # the previous frame's view (if the caller still holds one)
            # keeps the big buffer alive exactly as long as it needs it,
            # and the connection stops retaining it beyond that.
            self._buf = bytearray(self._initial)
        self._fill(sock, self._buf, length, allow_eof=False)
        return memoryview(self._buf)[:length]

    @staticmethod
    def _fill(sock, buf, count, allow_eof):
        """recv_into *buf* until *count* bytes arrived; False on clean EOF."""
        if not count:
            return True
        view = memoryview(buf)
        got = 0
        while got < count:
            read = sock.recv_into(view[got:count])
            if read == 0:
                if allow_eof and got == 0:
                    return False
                raise DecodeError(
                    f"connection closed mid-frame ({got}/{count} bytes read)"
                )
            got += read
        return True


class FrameBuffer:
    """Incremental frame reassembly for non-blocking or chunked input.

    Feed arbitrary byte chunks with :meth:`feed`; complete frames pop out
    of :meth:`frames`.
    """

    def __init__(self):
        self._buf = bytearray()

    def feed(self, data: bytes):
        """Append received bytes to the reassembly buffer."""
        self._buf += data

    def frames(self):
        """Yield every complete frame currently buffered."""
        while True:
            if len(self._buf) < 4:
                return
            (length,) = _u32.unpack(bytes(self._buf[:4]))
            if length > MAX_FRAME_SIZE:
                raise FrameTooLargeError(length)
            if len(self._buf) < 4 + length:
                return
            payload = bytes(self._buf[4 : 4 + length])
            del self._buf[: 4 + length]
            yield payload

    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buf)
