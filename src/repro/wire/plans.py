"""Wire records for compiled batch plans.

A *plan* is a recorded batch whose concrete argument values were lifted
out into numbered parameter slots; what remains is the batch's pure
*shape*.  The shape travels (and is content-hashed) once, the parameters
travel on every invocation.  Only the slot marker lives at the wire layer
— the plan model itself sits above the RMI layer in :mod:`repro.plan` —
so the codec stays free of middleware dependencies, exactly like
:class:`~repro.wire.refs.RemoteRef`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.wire.registry import serializable


@serializable
@dataclass(frozen=True)
class ParamSlot:
    """Placeholder for one lifted argument value inside a plan's shape.

    ``index`` addresses a position in the flat parameter tuple that
    accompanies every plan invocation.  Slots are assigned in recording
    order, so identical call sequences produce identical slot layouts.
    """

    index: int

    def __post_init__(self):
        if not isinstance(self.index, int) or self.index < 0:
            raise ValueError(f"slot index must be a non-negative int: {self.index!r}")

    def __repr__(self):
        return f"<ParamSlot #{self.index}>"
