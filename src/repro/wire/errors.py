"""Errors raised by the wire (serialization) layer."""


class WireError(Exception):
    """Base class for all serialization failures."""


class EncodeError(WireError):
    """A value could not be encoded into the wire format."""

    def __init__(self, value, reason=""):
        self.value = value
        self.reason = reason
        detail = f": {reason}" if reason else ""
        super().__init__(
            f"cannot encode value of type {type(value).__name__!r}{detail}"
        )


class DecodeError(WireError):
    """A byte stream could not be decoded back into a value."""


class TruncatedError(DecodeError):
    """The byte stream ended before a complete value was decoded."""

    def __init__(self, needed, available):
        self.needed = needed
        self.available = available
        super().__init__(
            f"truncated stream: needed {needed} more bytes, had {available}"
        )


class UnknownTagError(DecodeError):
    """An unrecognized type tag was found in the stream."""

    def __init__(self, tag, offset):
        self.tag = tag
        self.offset = offset
        super().__init__(f"unknown wire tag {tag!r} at offset {offset}")


class UnregisteredClassError(WireError):
    """A class name on the wire has no registered Python class.

    Raised when decoding a registered-object or exception payload whose
    class was never registered with :mod:`repro.wire.registry` on this
    side of the connection.
    """

    def __init__(self, class_name):
        self.class_name = class_name
        super().__init__(f"class {class_name!r} is not registered for the wire")
