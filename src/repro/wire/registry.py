"""Registry of classes that may cross the wire by copy.

The middleware distinguishes two kinds of reference parameters, mirroring
Java RMI (paper §2): *remote* objects are passed by remote-reference and
everything else must be *serializable*, i.e. passed by copy.  In Java,
serializability is declared by implementing ``java.io.Serializable``; here
a class opts in by registering with this module, normally through the
:func:`serializable` decorator.

Registration is by qualified class name, which is what travels on the
wire.  Both endpoints must register the same classes — exactly like Java
RMI requires both JVMs to have the class files.

Exceptions are handled the same way but kept in a separate namespace so a
malicious or buggy peer cannot smuggle an arbitrary registered object where
an exception is expected.  A small set of Python builtins is pre-registered
so unannotated application errors still round-trip usefully.
"""

from __future__ import annotations

import dataclasses
import threading

from repro.wire.errors import EncodeError, UnregisteredClassError

_lock = threading.Lock()
_classes: dict = {}
_class_names: dict = {}
_class_fields: dict = {}  # cls -> tuple of dataclass field names (or None)
_exceptions: dict = {}
_exception_names: dict = {}


def qualified_name(cls):
    """Return the wire name for *cls* (module-qualified)."""
    return f"{cls.__module__}.{cls.__qualname__}"


def serializable(cls):
    """Class decorator registering *cls* for pass-by-copy transfer.

    The class must either be a :func:`dataclasses.dataclass` or expose
    ``to_wire() -> dict`` and a ``from_wire(dict)`` classmethod.  Returns
    the class unchanged so it can be used as a plain decorator::

        @serializable
        @dataclass
        class Word:
            text: str
            language: str
    """
    if not (dataclasses.is_dataclass(cls) or _has_wire_hooks(cls)):
        raise TypeError(
            f"{cls.__name__} must be a dataclass or define to_wire/from_wire "
            "to be registered as serializable"
        )
    name = qualified_name(cls)
    # Field names are immutable per class: resolve them once here so the
    # encoder never walks dataclasses.fields() on the per-message path.
    if _has_wire_hooks(cls):
        field_names = None
    else:
        field_names = tuple(f.name for f in dataclasses.fields(cls))
    with _lock:
        _classes[name] = cls
        _class_names[cls] = name
        _class_fields[cls] = field_names
    return cls


def register_exception(cls):
    """Class decorator registering an exception type for the wire.

    Registered exceptions are reconstructed as their own class on the
    receiving side; unregistered ones decode as
    :class:`repro.rmi.exceptions.RemoteApplicationError` carrying the
    original class name and message.
    """
    if not issubclass(cls, BaseException):
        raise TypeError(f"{cls.__name__} is not an exception type")
    name = qualified_name(cls)
    with _lock:
        _exceptions[name] = cls
        _exception_names[cls] = name
    return cls


def _has_wire_hooks(cls):
    return callable(getattr(cls, "to_wire", None)) and callable(
        getattr(cls, "from_wire", None)
    )


def is_serializable(value):
    """Whether *value* is an instance of a registered copy-by-value class."""
    return type(value) in _class_names


def object_to_wire(value):
    """Break a registered object into ``(class_name, field_dict)``."""
    cls = type(value)
    name = _class_names.get(cls)
    if name is None:
        raise EncodeError(value, "class not registered as serializable")
    field_names = _class_fields.get(cls)
    if field_names is None:
        fields = value.to_wire()
    else:
        fields = {f: getattr(value, f) for f in field_names}
    return name, fields


def wire_fields_of(cls):
    """The registered field-name tuple for a dataclass, or ``None`` for
    classes using ``to_wire``/``from_wire`` hooks (and for unregistered
    classes).  The encoder uses this to pre-bake per-class handlers."""
    return _class_fields.get(cls)


def object_from_wire(class_name, fields):
    """Rebuild a registered object from its wire fields."""
    cls = _classes.get(class_name)
    if cls is None:
        raise UnregisteredClassError(class_name)
    # _class_fields discriminates hook classes (None) from dataclasses
    # without re-probing to_wire/from_wire attributes per message.
    if _class_fields.get(cls) is None:
        return cls.from_wire(fields)
    return cls(**fields)


def exception_to_wire(exc):
    """Break an exception into ``(class_name, args_tuple)``.

    Only registered exceptions keep their class identity; anything else is
    reported under its qualified name so the receiving side can surface a
    readable substitute.
    """
    cls = type(exc)
    name = _exception_names.get(cls, qualified_name(cls))
    args = tuple(exc.args)
    return name, args


def exception_from_wire(class_name, args):
    """Rebuild an exception; fall back to a generic carrier if unknown."""
    cls = _exceptions.get(class_name)
    if cls is not None:
        try:
            return cls(*args)
        except TypeError:
            exc = cls.__new__(cls)
            exc.args = args
            return exc
    # Local import: exceptions module registers itself with us.
    from repro.rmi.exceptions import RemoteApplicationError

    return RemoteApplicationError(class_name, args)


def registered_classes():
    """Snapshot of registered copy-by-value class names (for tooling)."""
    with _lock:
        return sorted(_classes)


def registered_exceptions():
    """Snapshot of registered exception class names (for tooling)."""
    with _lock:
        return sorted(_exceptions)


def _register_builtin_exceptions():
    for cls in (
        ValueError,
        TypeError,
        KeyError,
        IndexError,
        RuntimeError,
        ArithmeticError,
        ZeroDivisionError,
        NotImplementedError,
        PermissionError,
        FileNotFoundError,
        LookupError,
        StopIteration,
        OSError,
        AttributeError,
    ):
        name = qualified_name(cls)
        _exceptions[name] = cls
        _exception_names[cls] = name


_register_builtin_exceptions()
