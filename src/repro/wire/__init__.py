"""Wire format: the serialization substrate under the RMI layer.

Public surface:

- :func:`encode` / :func:`decode` — one value to/from bytes
- :func:`encode_many` / :func:`decode_many` — packed sequences
- :func:`serializable` — register a class for pass-by-copy
- :func:`register_exception` — register an exception for faithful transfer
- :class:`RemoteRef` — the wire-native remote reference
- :class:`ParamSlot` — the wire-native plan parameter placeholder
- :func:`frame` / :func:`read_frame` / :class:`FrameBuffer` — stream framing
"""

from repro.wire.decoder import Decoder, decode, decode_many
from repro.wire.encoder import Encoder, canonical_set_order, encode, encode_many
from repro.wire.errors import (
    DecodeError,
    EncodeError,
    TruncatedError,
    UnknownTagError,
    UnregisteredClassError,
    WireError,
)
from repro.wire.framing import FrameBuffer, FrameTooLargeError, frame, read_frame
from repro.wire.plans import ParamSlot
from repro.wire.refs import RemoteRef
from repro.wire.registry import (
    register_exception,
    registered_classes,
    registered_exceptions,
    serializable,
)

__all__ = [
    "Decoder",
    "DecodeError",
    "Encoder",
    "EncodeError",
    "FrameBuffer",
    "FrameTooLargeError",
    "ParamSlot",
    "RemoteRef",
    "TruncatedError",
    "UnknownTagError",
    "UnregisteredClassError",
    "WireError",
    "canonical_set_order",
    "decode",
    "decode_many",
    "encode",
    "encode_many",
    "frame",
    "read_frame",
    "register_exception",
    "registered_classes",
    "registered_exceptions",
    "serializable",
]
