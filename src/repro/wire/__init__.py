"""Wire format: the serialization substrate under the RMI layer.

Public surface:

- :func:`encode` / :func:`decode` — one value to/from bytes
- :func:`encode_many` / :func:`decode_many` — packed sequences
- :func:`encode_framed` — one value to a frame-prefixed buffer, in place
- :class:`BufferPool` — reusable message buffers (see :data:`GLOBAL_POOL`)
- :func:`serializable` — register a class for pass-by-copy
- :func:`register_exception` — register an exception for faithful transfer
- :class:`RemoteRef` — the wire-native remote reference
- :class:`ParamSlot` — the wire-native plan parameter placeholder
- :func:`frame` / :func:`frame_views` / :func:`write_frame` /
  :func:`read_frame` / :class:`FrameReceiver` / :class:`FrameBuffer` —
  stream framing (scatter-gather on the hot paths)
"""

from repro.wire.buffers import GLOBAL_POOL, BufferPool
from repro.wire.decoder import Decoder, decode, decode_many
from repro.wire.encoder import (
    Encoder,
    canonical_set_order,
    encode,
    encode_framed,
    encode_many,
)
from repro.wire.errors import (
    DecodeError,
    EncodeError,
    TruncatedError,
    UnknownTagError,
    UnregisteredClassError,
    WireError,
)
from repro.wire.framing import (
    FrameBuffer,
    FrameReceiver,
    FrameTooLargeError,
    frame,
    frame_views,
    read_frame,
    write_frame,
)
from repro.wire.plans import ParamSlot
from repro.wire.refs import RemoteRef
from repro.wire.registry import (
    register_exception,
    registered_classes,
    registered_exceptions,
    serializable,
)

__all__ = [
    "BufferPool",
    "Decoder",
    "DecodeError",
    "Encoder",
    "EncodeError",
    "FrameBuffer",
    "FrameReceiver",
    "FrameTooLargeError",
    "GLOBAL_POOL",
    "ParamSlot",
    "RemoteRef",
    "TruncatedError",
    "UnknownTagError",
    "UnregisteredClassError",
    "WireError",
    "canonical_set_order",
    "decode",
    "decode_many",
    "encode",
    "encode_framed",
    "encode_many",
    "frame",
    "frame_views",
    "read_frame",
    "register_exception",
    "registered_classes",
    "registered_exceptions",
    "serializable",
    "write_frame",
]
