"""Reusable byte buffers for the zero-copy wire pipeline.

Every message the middleware moves is built in (and read out of) a
``bytearray``.  A :class:`BufferPool` recycles a small set of them per
thread so steady-state encoding churns no buffer objects and the
encoder's buffers stay warm in cache.

Safety rules the pool enforces (and tests pin):

- a buffer is **cleared on release**, so a message abandoned
  half-encoded (an :class:`~repro.wire.errors.EncodeError` mid-message)
  can never leak stale bytes into the next message;
- the per-thread freelist is a LIFO bounded to ``max_buffers``; beyond
  that, released buffers are simply dropped (the GC handles them) — a
  burst can never grow the pool permanently;
- thread-safe and task-safe **without locking**: each thread owns its
  freelist (``threading.local``), so transport threads and asyncio
  workers never contend — and the pool sits on the per-message hot
  path, where a lock round trip would cost more than the allocation it
  saves.  Buffers released on a different thread than they were
  acquired on simply migrate freelists; nothing breaks.
"""

from __future__ import annotations

import threading

#: Buffers each thread's freelist retains.  Per-thread usage is one
#: buffer per in-progress message, so a handful covers nested encoders.
DEFAULT_MAX_BUFFERS = 8


class BufferPool:
    """A bounded per-thread LIFO of reusable ``bytearray`` buffers."""

    def __init__(self, max_buffers: int = DEFAULT_MAX_BUFFERS):
        if max_buffers < 0:
            raise ValueError(f"max_buffers cannot be negative: {max_buffers}")
        self._local = threading.local()
        self._max = max_buffers
        # Approximate under concurrency (unlocked by design); exact in
        # the single-threaded tests that read them.
        self.acquired = 0
        self.reused = 0

    @property
    def size(self) -> int:
        """Buffers idle in the calling thread's freelist."""
        return len(getattr(self._local, "free", ()))

    def acquire(self) -> bytearray:
        """Hand out an empty buffer (pooled if available, else fresh)."""
        self.acquired += 1
        free = getattr(self._local, "free", None)
        if free:
            self.reused += 1
            return free.pop()
        return bytearray()

    def release(self, buf: bytearray) -> None:
        """Return *buf* to the pool (cleared), dropping it when full."""
        if type(buf) is not bytearray:
            raise TypeError(
                f"pool buffers are bytearrays, got {type(buf).__name__}"
            )
        # Clear on release, not on acquire: a buffer can never sit in a
        # freelist carrying a dead message's bytes.
        del buf[:]
        try:
            free = self._local.free
        except AttributeError:
            free = self._local.free = []
        if len(free) < self._max:
            free.append(buf)


#: The process-wide pool the wire module-level helpers draw from.
GLOBAL_POOL = BufferPool()
