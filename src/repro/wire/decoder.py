"""Decoder for the tagged binary wire format.

Mirror of :mod:`repro.wire.encoder`.  The decoder is defensive: it bounds
nesting depth, validates lengths against the remaining buffer before
allocating, and raises :class:`~repro.wire.errors.DecodeError` subclasses
rather than arbitrary exceptions on malformed input.

**Zero-copy pipeline.**  The decoder normalizes its input to a
``memoryview`` and never slices ``bytes`` out of it while scanning:

- fixed-width payloads are read with ``struct.unpack_from`` straight at
  an offset — no per-token slice, no intermediate allocation;
- tags dispatch through a table indexed by the tag byte (one dict
  lookup, no if-chain walk), and container loops dispatch their items
  inline rather than re-entering the generic decode path;
- variable-width payloads (str/bytes/bigint) are viewed, not copied,
  until the moment a Python object must exist.

That makes it safe (and fast) to hand the decoder a view of a
transport's reusable receive buffer.  The one deliberate copy:
``bytes`` payloads are returned as **detached** ``bytes`` objects —
the public API promises ``bytes``, and a view pinned to a recycled
receive buffer would be silently rewritten by the next frame.
"""

from __future__ import annotations

import struct

from repro.wire import registry
from repro.wire.encoder import (
    TAG_BIGINT,
    TAG_BYTES,
    TAG_DICT,
    TAG_EXCEPTION,
    TAG_FALSE,
    TAG_FLOAT,
    TAG_FROZENSET,
    TAG_INT64,
    TAG_LIST,
    TAG_NONE,
    TAG_OBJECT,
    TAG_REMOTE_REF,
    TAG_SHARDED_REF,
    TAG_SET,
    TAG_STR,
    TAG_TRUE,
    TAG_TUPLE,
)
from repro.wire.errors import DecodeError, TruncatedError, UnknownTagError
from repro.wire.refs import RemoteRef

_MAX_DEPTH = 100

_u32 = struct.Struct(">I")
_i64 = struct.Struct(">q")
_f64 = struct.Struct(">d")

_unpack_u32 = _u32.unpack_from
_unpack_i64 = _i64.unpack_from
_unpack_f64 = _f64.unpack_from


class Decoder:
    """Pulls values off a bytes-like buffer, tracking an offset.

    Accepts ``bytes``, ``bytearray``, or any contiguous ``memoryview``
    (e.g. a window of a transport's receive buffer) without copying it.
    """

    __slots__ = ("_data", "_pos", "_len")

    def __init__(self, data):
        if type(data) in (bytes, bytearray):
            # Fast path: fresh views of bytes objects are always flat.
            view = memoryview(data)
        else:
            view = data if isinstance(data, memoryview) else memoryview(data)
            if view.format != "B" or view.ndim != 1 or not view.contiguous:
                try:
                    view = view.cast("B")
                except (TypeError, ValueError) as exc:
                    raise DecodeError(
                        f"decoder input must be a contiguous bytes-like: {exc}"
                    )
        self._data = view
        self._len = len(view)
        self._pos = 0

    @property
    def remaining(self) -> int:
        """Bytes not yet consumed."""
        return self._len - self._pos

    def at_end(self) -> bool:
        """Whether the whole buffer has been consumed."""
        return self._pos >= self._len

    def decode(self):
        """Decode and return the next value from the buffer."""
        return self._decode(0)

    # -- internals ---------------------------------------------------

    def _decode(self, depth):
        if depth > _MAX_DEPTH:
            raise DecodeError(f"nesting deeper than {_MAX_DEPTH}")
        pos = self._pos
        if pos >= self._len:
            raise TruncatedError(1, 0)
        self._pos = pos + 1
        handler = _JUMP.get(self._data[pos])
        if handler is None:
            raise UnknownTagError(bytes(self._data[pos : pos + 1]), pos)
        return handler(self, depth)

    def _take_length(self):
        """Read a u32 length and bounds-check it against the remainder."""
        pos = self._pos
        avail = self._len - pos
        if avail < 4:
            raise TruncatedError(4, avail)
        (length,) = _unpack_u32(self._data, pos)
        pos += 4
        self._pos = pos
        if length > self._len - pos:
            raise TruncatedError(length, self._len - pos)
        return length

    def _expect_str(self, depth):
        value = self._decode(depth + 1)
        if not isinstance(value, str):
            raise DecodeError(f"expected string, found {type(value).__name__}")
        return value


def _decode_counted(dec, depth):
    """The shared container loop: read a u32 count, decode the items.

    The sequence containers (lists, tuples, sets, frozensets) funnel
    here, so the hot loop exists once and costs one call per
    container; dicts carry their own direct variant.  The two most
    frequent wire shapes, int64 and str, are decoded inline without a
    dispatch call; everything else goes through the jump table.

    Returns ``None`` for an empty container (the caller substitutes
    its own empty object) — which also keeps a legal empty container
    at the depth limit decodable, since the hoisted depth check is
    skipped with the loop.
    """
    data = dec._data
    size = dec._len
    pos = dec._pos
    if size - pos < 4:
        raise TruncatedError(4, size - pos)
    (count,) = _unpack_u32(data, pos)
    pos += 4
    dec._pos = pos
    if not count:
        return None
    if count > size - pos:
        # Each item needs at least a tag byte; reject absurd counts
        # before allocating.
        raise TruncatedError(count, size - pos)
    if depth > _MAX_DEPTH:
        raise DecodeError(f"nesting deeper than {_MAX_DEPTH}")
    lookup = _JUMP.get
    out = []
    append = out.append
    for _ in range(count):
        pos = dec._pos
        if pos >= size:
            raise TruncatedError(1, 0)
        tag = data[pos]
        pos += 1
        if tag == _INT64_TAG:
            if size - pos < 8:
                raise TruncatedError(8, size - pos)
            dec._pos = pos + 8
            append(_unpack_i64(data, pos)[0])
            continue
        if tag == _STR_TAG:
            if size - pos < 4:
                raise TruncatedError(4, size - pos)
            (length,) = _unpack_u32(data, pos)
            pos += 4
            end = pos + length
            if end > size:
                raise TruncatedError(length, size - pos)
            dec._pos = end
            try:
                append(str(data[pos:end], "utf-8"))
            except UnicodeDecodeError as exc:
                raise DecodeError(f"invalid utf-8 in string payload: {exc}")
            continue
        dec._pos = pos
        handler = lookup(tag)
        if handler is None:
            raise UnknownTagError(bytes(data[pos - 1 : pos]), pos - 1)
        append(handler(dec, depth))
    return out


# -- per-tag handlers (module level: dispatched by tag byte) -------------
# Bounds checks are inlined — no helper call sits between a tag and its
# payload read on the hot path.


def _decode_none(dec, depth):
    return None


def _decode_true(dec, depth):
    return True


def _decode_false(dec, depth):
    return False


def _decode_int64(dec, depth):
    pos = dec._pos
    if dec._len - pos < 8:
        raise TruncatedError(8, dec._len - pos)
    dec._pos = pos + 8
    return _unpack_i64(dec._data, pos)[0]


def _decode_bigint(dec, depth):
    length = dec._take_length()
    pos = dec._pos
    if dec._len - pos < 1:
        raise TruncatedError(1, 0)
    sign = dec._data[pos]
    pos += 1
    # Re-check: the length prefix was validated before the sign byte was
    # consumed, so a magnitude flush against the buffer end is short one.
    if length > dec._len - pos:
        raise TruncatedError(length, dec._len - pos)
    dec._pos = pos + length
    magnitude = int.from_bytes(dec._data[pos : pos + length], "big")
    return -magnitude if sign else magnitude


def _decode_float(dec, depth):
    pos = dec._pos
    if dec._len - pos < 8:
        raise TruncatedError(8, dec._len - pos)
    dec._pos = pos + 8
    return _unpack_f64(dec._data, pos)[0]


def _decode_str(dec, depth):
    size = dec._len
    pos = dec._pos
    if size - pos < 4:
        raise TruncatedError(4, size - pos)
    (length,) = _unpack_u32(dec._data, pos)
    pos += 4
    end = pos + length
    if end > size:
        raise TruncatedError(length, size - pos)
    dec._pos = end
    try:
        return str(dec._data[pos:end], "utf-8")
    except UnicodeDecodeError as exc:
        raise DecodeError(f"invalid utf-8 in string payload: {exc}")


def _decode_bytes(dec, depth):
    size = dec._len
    pos = dec._pos
    if size - pos < 4:
        raise TruncatedError(4, size - pos)
    (length,) = _unpack_u32(dec._data, pos)
    pos += 4
    end = pos + length
    if end > size:
        raise TruncatedError(length, size - pos)
    dec._pos = end
    # Deliberate copy: the API promises detached bytes (see module doc).
    return bytes(dec._data[pos:end])


def _decode_list(dec, depth):
    out = _decode_counted(dec, depth + 1)
    return out if out is not None else []


def _decode_tuple(dec, depth):
    out = _decode_counted(dec, depth + 1)
    return tuple(out) if out is not None else ()


def _decode_set(dec, depth):
    out = _decode_counted(dec, depth + 1)
    return set(out) if out is not None else set()


def _decode_frozenset(dec, depth):
    out = _decode_counted(dec, depth + 1)
    return frozenset(out) if out is not None else frozenset()


def _decode_dict(dec, depth):
    # Dicts get their own direct loop (entries land straight in the
    # result, no staging list): most messages are a lattice of small
    # field/kwargs dicts, where staging costs more than decoding.
    # Keys inline the str fast path, values str+int64 — the same pair
    # of shapes _decode_counted inlines.
    data = dec._data
    size = dec._len
    pos = dec._pos
    if size - pos < 4:
        raise TruncatedError(4, size - pos)
    (count,) = _unpack_u32(data, pos)
    dec._pos = pos + 4
    if not count:
        return {}
    depth += 1
    if depth > _MAX_DEPTH:
        raise DecodeError(f"nesting deeper than {_MAX_DEPTH}")
    lookup = _JUMP.get
    result = {}
    for _ in range(count):
        pos = dec._pos
        if pos >= size:
            raise TruncatedError(1, 0)
        tag = data[pos]
        pos += 1
        if tag == _STR_TAG:
            if size - pos < 4:
                raise TruncatedError(4, size - pos)
            (length,) = _unpack_u32(data, pos)
            pos += 4
            end = pos + length
            if end > size:
                raise TruncatedError(length, size - pos)
            dec._pos = end
            try:
                key = str(data[pos:end], "utf-8")
            except UnicodeDecodeError as exc:
                raise DecodeError(f"invalid utf-8 in string payload: {exc}")
        else:
            dec._pos = pos
            handler = lookup(tag)
            if handler is None:
                raise UnknownTagError(bytes(data[pos - 1 : pos]), pos - 1)
            key = handler(dec, depth)
        pos = dec._pos
        if pos >= size:
            raise TruncatedError(1, 0)
        tag = data[pos]
        pos += 1
        if tag == _INT64_TAG:
            if size - pos < 8:
                raise TruncatedError(8, size - pos)
            dec._pos = pos + 8
            result[key] = _unpack_i64(data, pos)[0]
            continue
        if tag == _STR_TAG:
            if size - pos < 4:
                raise TruncatedError(4, size - pos)
            (length,) = _unpack_u32(data, pos)
            pos += 4
            end = pos + length
            if end > size:
                raise TruncatedError(length, size - pos)
            dec._pos = end
            try:
                result[key] = str(data[pos:end], "utf-8")
            except UnicodeDecodeError as exc:
                raise DecodeError(f"invalid utf-8 in string payload: {exc}")
            continue
        dec._pos = pos
        handler = lookup(tag)
        if handler is None:
            raise UnknownTagError(bytes(data[pos - 1 : pos]), pos - 1)
        result[key] = handler(dec, depth)
    return result


def _decode_object(dec, depth):
    # Well-formed objects always carry STR + DICT payloads; read them
    # directly and keep the generic path for the malformed-input errors.
    # The payloads sit one level down — same check _decode would make.
    if depth + 1 > _MAX_DEPTH:
        raise DecodeError(f"nesting deeper than {_MAX_DEPTH}")
    pos = dec._pos
    data = dec._data
    if pos < dec._len and data[pos] == _STR_TAG:
        dec._pos = pos + 1
        class_name = _decode_str(dec, depth + 1)
    else:
        class_name = dec._expect_str(depth)
    pos = dec._pos
    if pos < dec._len and data[pos] == _DICT_TAG:
        dec._pos = pos + 1
        fields = _decode_dict(dec, depth + 1)
    else:
        fields = dec._decode(depth + 1)
        if not isinstance(fields, dict):
            raise DecodeError("object payload must be a dict of fields")
    return registry.object_from_wire(class_name, fields)


def _decode_exception(dec, depth):
    class_name = dec._expect_str(depth)
    args = dec._decode(depth + 1)
    if not isinstance(args, tuple):
        raise DecodeError("exception payload must be a tuple of args")
    return registry.exception_from_wire(class_name, args)


def _decode_remote_ref(dec, depth):
    endpoint = dec._expect_str(depth)
    object_id = dec._decode(depth + 1)
    interfaces = dec._decode(depth + 1)
    if not isinstance(object_id, int) or not isinstance(interfaces, tuple):
        raise DecodeError("malformed remote reference payload")
    return RemoteRef(endpoint, object_id, interfaces)


def _decode_sharded_ref(dec, depth):
    endpoint = dec._expect_str(depth)
    object_id = dec._decode(depth + 1)
    interfaces = dec._decode(depth + 1)
    shard = dec._decode(depth + 1)
    if (not isinstance(object_id, int) or not isinstance(interfaces, tuple)
            or not isinstance(shard, str)):
        raise DecodeError("malformed sharded remote reference payload")
    return RemoteRef(endpoint, object_id, interfaces, shard=shard)


_INT64_TAG = TAG_INT64[0]
_STR_TAG = TAG_STR[0]
_DICT_TAG = TAG_DICT[0]

_JUMP = {
    TAG_NONE[0]: _decode_none,
    TAG_TRUE[0]: _decode_true,
    TAG_FALSE[0]: _decode_false,
    TAG_INT64[0]: _decode_int64,
    TAG_BIGINT[0]: _decode_bigint,
    TAG_FLOAT[0]: _decode_float,
    TAG_STR[0]: _decode_str,
    TAG_BYTES[0]: _decode_bytes,
    TAG_LIST[0]: _decode_list,
    TAG_TUPLE[0]: _decode_tuple,
    TAG_SET[0]: _decode_set,
    TAG_FROZENSET[0]: _decode_frozenset,
    TAG_DICT[0]: _decode_dict,
    TAG_OBJECT[0]: _decode_object,
    TAG_EXCEPTION[0]: _decode_exception,
    TAG_REMOTE_REF[0]: _decode_remote_ref,
    TAG_SHARDED_REF[0]: _decode_sharded_ref,
}


def decode(data):
    """Decode exactly one value; trailing bytes are an error."""
    dec = Decoder(data)
    value = dec._decode(0)
    if dec._pos < dec._len:
        raise DecodeError(f"{dec._len - dec._pos} trailing bytes after value")
    return value


def decode_many(data):
    """Decode all values packed back-to-back in *data*."""
    dec = Decoder(data)
    values = []
    while not dec.at_end():
        values.append(dec.decode())
    return values
