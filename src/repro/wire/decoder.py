"""Decoder for the tagged binary wire format.

Mirror of :mod:`repro.wire.encoder`.  The decoder is defensive: it bounds
nesting depth, validates lengths against the remaining buffer before
allocating, and raises :class:`~repro.wire.errors.DecodeError` subclasses
rather than arbitrary exceptions on malformed input.
"""

from __future__ import annotations

import struct

from repro.wire import registry
from repro.wire.encoder import (
    TAG_BIGINT,
    TAG_BYTES,
    TAG_DICT,
    TAG_EXCEPTION,
    TAG_FALSE,
    TAG_FLOAT,
    TAG_FROZENSET,
    TAG_INT64,
    TAG_LIST,
    TAG_NONE,
    TAG_OBJECT,
    TAG_REMOTE_REF,
    TAG_SET,
    TAG_STR,
    TAG_TRUE,
    TAG_TUPLE,
)
from repro.wire.errors import DecodeError, TruncatedError, UnknownTagError
from repro.wire.refs import RemoteRef

_MAX_DEPTH = 100

_u32 = struct.Struct(">I")
_i64 = struct.Struct(">q")
_f64 = struct.Struct(">d")


class Decoder:
    """Pulls values off a byte buffer, tracking an offset."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    @property
    def remaining(self) -> int:
        """Bytes not yet consumed."""
        return len(self._data) - self._pos

    def at_end(self) -> bool:
        """Whether the whole buffer has been consumed."""
        return self._pos >= len(self._data)

    def decode(self):
        """Decode and return the next value from the buffer."""
        return self._decode(0)

    # -- internals ---------------------------------------------------

    def _take(self, count):
        if self.remaining < count:
            raise TruncatedError(count, self.remaining)
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def _take_length(self):
        (length,) = _u32.unpack(self._take(4))
        if length > self.remaining:
            raise TruncatedError(length, self.remaining)
        return length

    def _decode(self, depth):
        if depth > _MAX_DEPTH:
            raise DecodeError(f"nesting deeper than {_MAX_DEPTH}")
        tag = self._take(1)
        if tag == TAG_NONE:
            return None
        if tag == TAG_TRUE:
            return True
        if tag == TAG_FALSE:
            return False
        if tag == TAG_INT64:
            return _i64.unpack(self._take(8))[0]
        if tag == TAG_BIGINT:
            length = self._take_length()
            sign = self._take(1)[0]
            magnitude = int.from_bytes(self._take(length), "big")
            return -magnitude if sign else magnitude
        if tag == TAG_FLOAT:
            return _f64.unpack(self._take(8))[0]
        if tag == TAG_STR:
            length = self._take_length()
            try:
                return self._take(length).decode("utf-8")
            except UnicodeDecodeError as exc:
                raise DecodeError(f"invalid utf-8 in string payload: {exc}")
        if tag == TAG_BYTES:
            return bytes(self._take(self._take_length()))
        if tag == TAG_LIST:
            return self._decode_items(depth)
        if tag == TAG_TUPLE:
            return tuple(self._decode_items(depth))
        if tag == TAG_SET:
            return set(self._decode_items(depth))
        if tag == TAG_FROZENSET:
            return frozenset(self._decode_items(depth))
        if tag == TAG_DICT:
            (count,) = _u32.unpack(self._take(4))
            result = {}
            for _ in range(count):
                key = self._decode(depth + 1)
                result[key] = self._decode(depth + 1)
            return result
        if tag == TAG_OBJECT:
            class_name = self._expect_str(depth)
            fields = self._decode(depth + 1)
            if not isinstance(fields, dict):
                raise DecodeError("object payload must be a dict of fields")
            return registry.object_from_wire(class_name, fields)
        if tag == TAG_EXCEPTION:
            class_name = self._expect_str(depth)
            args = self._decode(depth + 1)
            if not isinstance(args, tuple):
                raise DecodeError("exception payload must be a tuple of args")
            return registry.exception_from_wire(class_name, args)
        if tag == TAG_REMOTE_REF:
            endpoint = self._expect_str(depth)
            object_id = self._decode(depth + 1)
            interfaces = self._decode(depth + 1)
            if not isinstance(object_id, int) or not isinstance(interfaces, tuple):
                raise DecodeError("malformed remote reference payload")
            return RemoteRef(endpoint, object_id, interfaces)
        raise UnknownTagError(tag, self._pos - 1)

    def _decode_items(self, depth):
        (count,) = _u32.unpack(self._take(4))
        # Each item needs at least one tag byte; reject absurd counts
        # before allocating.
        if count > self.remaining:
            raise TruncatedError(count, self.remaining)
        return [self._decode(depth + 1) for _ in range(count)]

    def _expect_str(self, depth):
        value = self._decode(depth + 1)
        if not isinstance(value, str):
            raise DecodeError(f"expected string, found {type(value).__name__}")
        return value


def decode(data: bytes):
    """Decode exactly one value; trailing bytes are an error."""
    dec = Decoder(data)
    value = dec.decode()
    if not dec.at_end():
        raise DecodeError(f"{dec.remaining} trailing bytes after value")
    return value


def decode_many(data: bytes):
    """Decode all values packed back-to-back in *data*."""
    dec = Decoder(data)
    values = []
    while not dec.at_end():
        values.append(dec.decode())
    return values
