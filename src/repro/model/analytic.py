"""Analytic cost models for RPC vs explicit batching.

The paper's related work (§6) cites Detmold & Oudshoorn's analytic
performance models for RPC and batched futures and notes they "could be
extended to model the performance properties of the new optimization
constructs of BRMI".  This module is that extension, specialized to the
cost parameters of our simulated testbed:

RMI, n independent calls::

    T_rmi(n) = n · [ c_req + c_disp + 2·L + (b_up + b_dn)·(8/B + 2·k) ]

BRMI, one batch of n calls::

    T_brmi(n) = c_req + c_disp + 2·L + (b_up(n) + b_dn(n))·(8/B + 2·k)
              + c_setup + n·(c_record + c_op)

with L the one-way latency, B the bandwidth, k the per-byte CPU cost and
c_* the per-event host charges.  The model predicts the same quantities
the simulator measures, so tests can hold them against each other, and
closed-form analysis gives the crossover batch size below which plain
RMI wins (Figure 5 shows it empirically at n ≈ 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.net.conditions import (
    CHARGE_BATCH_OP,
    CHARGE_BATCH_RECORD,
    CHARGE_BATCH_SETUP,
    CHARGE_PROXY_CREATE,
    CHARGE_REMOTE_EXPORT,
    CHARGE_STUB_CREATE,
    HostCosts,
    NetworkConditions,
)


@dataclass(frozen=True)
class CallShape:
    """Byte/structure profile of one logical remote call.

    - ``request_bytes`` / ``response_bytes``: payload per plain RMI call;
    - ``batched_request_bytes`` / ``batched_response_bytes``: marginal
      payload this call adds to a batch (descriptor vs full envelope);
    - ``remote_returns``: how many remote objects the call returns (each
      costs an export + stub creation under RMI, nothing under BRMI).
    """

    request_bytes: int = 96
    response_bytes: int = 32
    batched_request_bytes: int = 72
    batched_response_bytes: int = 24
    remote_returns: int = 0

    def __post_init__(self):
        for field_name in (
            "request_bytes",
            "response_bytes",
            "batched_request_bytes",
            "batched_response_bytes",
            "remote_returns",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} cannot be negative")


#: Envelope bytes of a batch request/response beyond its per-op payload.
BATCH_ENVELOPE_BYTES = 120


def _one_way(conditions: NetworkConditions, hosts: HostCosts,
             num_bytes: int) -> float:
    """Seconds to move *num_bytes* one way, including codec CPU."""
    return (
        conditions.transmission_time(num_bytes)
        + hosts.per_byte_cpu_s * num_bytes
    )


def predict_rmi_s(conditions: NetworkConditions, hosts: HostCosts,
                  calls: int, shape: CallShape = CallShape()) -> float:
    """Predicted seconds for *calls* sequential RMI invocations."""
    if calls < 0:
        raise ValueError(f"calls cannot be negative: {calls}")
    per_call = (
        hosts.request_overhead_s
        + hosts.dispatch_overhead_s
        + _one_way(conditions, hosts, shape.request_bytes)
        + _one_way(conditions, hosts, shape.response_bytes)
        + shape.remote_returns
        * (
            hosts.charge_cost(CHARGE_REMOTE_EXPORT)
            + hosts.charge_cost(CHARGE_STUB_CREATE)
        )
    )
    return calls * per_call


def predict_brmi_s(conditions: NetworkConditions, hosts: HostCosts,
                   calls: int, shape: CallShape = CallShape()) -> float:
    """Predicted seconds for one explicit batch of *calls* invocations."""
    if calls < 0:
        raise ValueError(f"calls cannot be negative: {calls}")
    if calls == 0:
        return 0.0
    up = BATCH_ENVELOPE_BYTES + calls * shape.batched_request_bytes
    down = BATCH_ENVELOPE_BYTES + calls * shape.batched_response_bytes
    return (
        hosts.request_overhead_s
        + hosts.dispatch_overhead_s
        + _one_way(conditions, hosts, up)
        + _one_way(conditions, hosts, down)
        + hosts.charge_cost(CHARGE_PROXY_CREATE)  # wrap the root stub
        + hosts.charge_cost(CHARGE_BATCH_SETUP)
        + calls
        * (
            hosts.charge_cost(CHARGE_BATCH_RECORD)
            + hosts.charge_cost(CHARGE_BATCH_OP)
        )
    )


def speedup(conditions: NetworkConditions, hosts: HostCosts, calls: int,
            shape: CallShape = CallShape()) -> float:
    """Predicted RMI/BRMI time ratio for a batch of *calls*."""
    brmi = predict_brmi_s(conditions, hosts, calls, shape)
    if brmi == 0:
        return math.inf
    return predict_rmi_s(conditions, hosts, calls, shape) / brmi


def crossover_calls(conditions: NetworkConditions, hosts: HostCosts,
                    shape: CallShape = CallShape(),
                    search_limit: int = 1000) -> int:
    """Smallest batch size at which BRMI is at least as fast as RMI.

    Figure 5's observation — "RMI outperforms BRMI when the batch size is
    smaller than two" — corresponds to a crossover of 2 under the LAN
    parameters.  Returns ``search_limit + 1`` if BRMI never catches up
    within the search range (degenerate parameterizations).
    """
    for calls in range(1, search_limit + 1):
        if predict_brmi_s(conditions, hosts, calls, shape) <= predict_rmi_s(
            conditions, hosts, calls, shape
        ):
            return calls
    return search_limit + 1


def latency_advantage(conditions: NetworkConditions, hosts: HostCosts,
                      calls: int, shape: CallShape = CallShape()) -> float:
    """Absolute seconds saved by batching *calls* invocations.

    Grows linearly in both the call count and the link latency — the
    quantitative form of the paper's motivation that latency (which lags
    bandwidth, Patterson 2004) dominates chatty distributed objects.
    """
    return predict_rmi_s(conditions, hosts, calls, shape) - predict_brmi_s(
        conditions, hosts, calls, shape
    )


def shape_from_stats(requests: int, bytes_sent: int, bytes_received: int,
                     remote_returns: int = 0) -> CallShape:
    """Derive an average :class:`CallShape` from observed traffic.

    Used by tests to feed the model the byte profile the simulator
    actually produced, so model-vs-simulation comparisons do not depend
    on guessing message sizes.
    """
    if requests < 1:
        raise ValueError("need at least one observed request")
    return CallShape(
        request_bytes=bytes_sent // requests,
        response_bytes=bytes_received // requests,
        batched_request_bytes=bytes_sent // requests,
        batched_response_bytes=bytes_received // requests,
        remote_returns=remote_returns,
    )
