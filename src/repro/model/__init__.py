"""Analytic performance models (Detmold/Oudshoorn extension, paper §6)."""

from repro.model.analytic import (
    BATCH_ENVELOPE_BYTES,
    CallShape,
    crossover_calls,
    latency_advantage,
    predict_brmi_s,
    predict_rmi_s,
    shape_from_stats,
    speedup,
)

__all__ = [
    "BATCH_ENVELOPE_BYTES",
    "CallShape",
    "crossover_calls",
    "latency_advantage",
    "predict_brmi_s",
    "predict_rmi_s",
    "shape_from_stats",
    "speedup",
]
